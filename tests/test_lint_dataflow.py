"""Tests for PR 10's lint additions: the interprocedural RNG-custody dataflow
rules, the vectorized-tier rules, the incremental cache, SARIF output and the
allowlist path-form unification.

Per new rule: a positive fixture (the violation fires), a negative fixture (the
disciplined idiom passes) and a suppressed fixture (the inline escape hatch
works) — each one is exactly what the CI strict gate would catch. Plus the
cross-module taint fixture (a stream built in one module, drawn order-dependently
in another), cache invalidation semantics (content edit refreshes, mtime touch
hits, escape-hatch edits are never stale) and SARIF 2.1.0 document shape.
"""

from __future__ import annotations

import json
import os
import subprocess
import textwrap
from pathlib import Path

from repro.cli import main
from repro.lint import (
    Allowlist,
    LintCache,
    LintReport,
    report_to_sarif,
    rule_ids,
    ruleset_fingerprint,
    run_lint,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def lint_source(
    tmp_path: Path,
    source: str,
    name: str = "module.py",
    rules=None,
    strict: bool = False,
    allowlist=None,
    cache=None,
) -> LintReport:
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    if allowlist is None:
        allowlist = Allowlist.empty()
    return run_lint([path], rules=rules, strict=strict, allowlist=allowlist, cache=cache)


def lint_package(tmp_path: Path, files, target: str, rules=None) -> LintReport:
    """Write a ``repro``-shaped package of fixture modules and lint ``target``
    (so the dataflow resolver finds the package root and sibling modules)."""
    (tmp_path / "repro").mkdir(parents=True, exist_ok=True)
    (tmp_path / "repro" / "__init__.py").write_text("")
    for name, source in files.items():
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return run_lint([tmp_path / target], rules=rules, allowlist=Allowlist.empty())


def finding_rules(report: LintReport):
    return [finding.rule for finding in report.sorted_findings()]


# ------------------------------------------------------------- RNG custody rules


class TestDrawInUnorderedLoop:
    def test_draw_in_set_loop_fires(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            import random

            def jitter(peers, seed):
                stream = random.Random(seed)
                out = []
                for peer in set(peers):
                    out.append(stream.random())
                return out
            """,
            rules=["draw-in-unordered-loop"],
        )
        assert finding_rules(report) == ["draw-in-unordered-loop"]
        assert "hash order" in report.findings[0].message

    def test_set_comprehension_draw_fires(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            def sample(rng, ids):
                members = {x for x in ids}
                return [rng.randint(0, 9) for m in members]
            """,
            rules=["draw-in-unordered-loop"],
        )
        assert finding_rules(report) == ["draw-in-unordered-loop"]

    def test_sorted_iteration_passes(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            def jitter(rng, peers):
                return [rng.random() for peer in sorted(set(peers))]
            """,
            rules=["draw-in-unordered-loop"],
        )
        assert report.findings == []

    def test_positional_stream_keys_pass(self, tmp_path):
        # columnar.rng draws are keyed by position, not stream state — the safe
        # idiom the rule exists to steer people toward must not be flagged.
        report = lint_source(
            tmp_path,
            """
            from repro.columnar.rng import stream

            def keys(base, rows):
                base_key = stream(base, 1, 2)
                return [base_key ^ row for row in {1, 2, 3}]
            """,
            rules=["draw-in-unordered-loop"],
        )
        assert report.findings == []

    def test_suppressed(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            def jitter(rng, peers):
                out = []
                for peer in set(peers):
                    out.append(rng.random())  # repro-lint: allow[draw-in-unordered-loop]
                return out
            """,
            rules=["draw-in-unordered-loop"],
        )
        assert report.findings == []
        assert report.suppressed == 1


class TestSharedStream:
    def test_two_consumer_scopes_fire(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            import random

            rng = random.Random(0)

            def jitter():
                return rng.random()

            def backoff():
                return rng.uniform(0.0, 1.0)
            """,
            rules=["shared-stream"],
        )
        assert finding_rules(report) == ["shared-stream"]
        assert "derive" in report.findings[0].message

    def test_single_consumer_passes(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            import random

            rng = random.Random(0)

            def jitter():
                return rng.random()
            """,
            rules=["shared-stream"],
        )
        assert report.findings == []

    def test_per_consumer_derivation_passes(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            from repro.simulator.seeding import derive_seed
            import random

            def jitter(master):
                rng = random.Random(derive_seed(master, "jitter"))
                return rng.random()

            def backoff(master):
                rng = random.Random(derive_seed(master, "backoff"))
                return rng.random()
            """,
            rules=["shared-stream"],
        )
        assert report.findings == []

    def test_suppressed(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            import random

            rng = random.Random(0)

            def jitter():
                return rng.random()

            def backoff():
                return rng.uniform(0.0, 1.0)  # repro-lint: allow[shared-stream]
            """,
            rules=["shared-stream"],
        )
        assert report.findings == []
        assert report.suppressed == 1


class TestRngCrossesProcess:
    def test_pickled_stream_fires(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            import pickle
            import random

            def snapshot(seed):
                rng = random.Random(seed)
                return pickle.dumps({"rng": rng})
            """,
            rules=["rng-crosses-process"],
        )
        assert finding_rules(report) == ["rng-crosses-process"]
        assert "derive_seed" in report.findings[0].message

    def test_queue_put_fires(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            def enqueue(work_queue, rng):
                work_queue.put((rng, 1))
            """,
            rules=["rng-crosses-process"],
        )
        assert finding_rules(report) == ["rng-crosses-process"]

    def test_process_args_fire(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            import multiprocessing
            import random

            def launch(worker, seed):
                rng = random.Random(seed)
                return multiprocessing.Process(target=worker, args=(rng,))
            """,
            rules=["rng-crosses-process"],
        )
        assert finding_rules(report) == ["rng-crosses-process"]

    def test_shipping_the_seed_passes(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            from repro.simulator.seeding import derive_seed

            def enqueue(work_queue, master, cell):
                work_queue.put(derive_seed(master, cell))
            """,
            rules=["rng-crosses-process"],
        )
        assert report.findings == []

    def test_suppressed(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            def enqueue(work_queue, rng):
                work_queue.put(rng)  # repro-lint: allow[rng-crosses-process]
            """,
            rules=["rng-crosses-process"],
        )
        assert report.findings == []
        assert report.suppressed == 1


class TestCrossModuleTaint:
    def test_stream_built_elsewhere_is_tracked(self, tmp_path):
        # The acceptance fixture: module A returns a stream, module B consumes
        # it inside set iteration under a non-conventional local name — only the
        # cross-module return summary can see that ``stream`` is an RNG.
        report = lint_package(
            tmp_path,
            {
                "repro/maker.py": """
                    import random

                    def make_stream(seed):
                        return random.Random(seed)
                    """,
                "repro/consumer.py": """
                    from repro.maker import make_stream

                    def pick(peers, seed):
                        stream = make_stream(seed)
                        return [stream.random() for peer in set(peers)]
                    """,
            },
            "repro/consumer.py",
            rules=["draw-in-unordered-loop"],
        )
        assert finding_rules(report) == ["draw-in-unordered-loop"]

    def test_non_stream_return_not_tainted(self, tmp_path):
        report = lint_package(
            tmp_path,
            {
                "repro/maker.py": """
                    def make_label(seed):
                        return f"cell-{seed}"
                    """,
                "repro/consumer.py": """
                    from repro.maker import make_label

                    def pick(peers, seed):
                        label = make_label(seed)
                        return [label for peer in set(peers)]
                    """,
            },
            "repro/consumer.py",
            rules=["draw-in-unordered-loop"],
        )
        assert report.findings == []


# ------------------------------------------------------------ vectorization tier


class TestHotloopPythonScan:
    def test_unguarded_row_loop_fires(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            class Engine:
                def census(self):
                    total = 0
                    for row in range(self._rows):
                        total += self.alive[row]
                    return total
            """,
            name="repro/columnar/engine.py",
            rules=["hotloop-python-scan"],
        )
        assert finding_rules(report) == ["hotloop-python-scan"]

    def test_fallback_branch_passes(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            class Engine:
                def census(self):
                    if self.use_numpy:
                        return int(as_np(self.alive)[: self._rows].sum())
                    total = 0
                    for row in range(self._rows):
                        total += self.alive[row]
                    return total
            """,
            name="repro/columnar/engine.py",
            rules=["hotloop-python-scan"],
        )
        assert report.findings == []

    def test_fallback_only_helper_passes(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            def _census_fallback(eng):
                total = 0
                for row in range(eng._rows):
                    total += eng.alive[row]
                return total

            def census(eng):
                if eng.use_numpy:
                    return int(as_np(eng.alive)[: eng._rows].sum())
                return _census_fallback(eng)
            """,
            name="repro/columnar/engine.py",
            rules=["hotloop-python-scan"],
        )
        assert report.findings == []

    def test_outside_tier_passes(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            class Engine:
                def census(self):
                    return sum(self.alive[row] for row in range(self._rows))
            """,
            name="repro/metrics/census.py",
            rules=["hotloop-python-scan"],
        )
        assert report.findings == []

    def test_suppressed(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            def sweep(eng):
                for row in eng.live_rows():  # repro-lint: allow[hotloop-python-scan]
                    eng.kick(row)
            """,
            name="repro/columnar/engine.py",
            rules=["hotloop-python-scan"],
        )
        assert report.findings == []
        assert report.suppressed == 1


class TestHotloopAlloc:
    def test_row_scaled_alloc_in_loop_fires(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            import numpy as np

            def waves(rows, count):
                for wave in range(count):
                    want = np.full(rows.size, 7, dtype=np.int64)
                return want
            """,
            name="repro/columnar/shuffle.py",
            rules=["hotloop-alloc"],
        )
        assert finding_rules(report) == ["hotloop-alloc"]
        assert "hoist" in report.findings[0].message

    def test_hoisted_alloc_passes(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            import numpy as np

            def waves(rows, count):
                want = np.full(rows.size, 7, dtype=np.int64)
                for wave in range(count):
                    want[:] = wave
                return want
            """,
            name="repro/columnar/shuffle.py",
            rules=["hotloop-alloc"],
        )
        assert report.findings == []

    def test_constant_extent_alloc_passes(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            import numpy as np

            def waves(count):
                for wave in range(count):
                    scratch = np.zeros(8)
                return scratch
            """,
            name="repro/columnar/shuffle.py",
            rules=["hotloop-alloc"],
        )
        assert report.findings == []

    def test_suppressed(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            import numpy as np

            def waves(rows, count):
                for wave in range(count):
                    want = np.full(rows.size, 7)  # repro-lint: allow[hotloop-alloc]
                return want
            """,
            name="repro/columnar/shuffle.py",
            rules=["hotloop-alloc"],
        )
        assert report.findings == []
        assert report.suppressed == 1


class TestFallbackParity:
    def test_numpy_only_side_effects_fire(self, tmp_path):
        # The acceptance fixture: a numpy-only columnar branch that re-joins
        # shared code — numpy and REPRO_NO_NUMPY=1 runs diverge silently.
        report = lint_source(
            tmp_path,
            """
            class Engine:
                def clear(self, n):
                    if self.use_numpy:
                        as_np(self.isolated)[:n] = 0
                    self.round += 1
            """,
            name="repro/columnar/engine.py",
            rules=["fallback-parity"],
        )
        assert finding_rules(report) == ["fallback-parity"]
        assert "mirror" in report.findings[0].message

    def test_guarded_return_without_fallback_fires(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            def census(eng):
                if eng.use_numpy:
                    return int(as_np(eng.alive).sum())
            """,
            name="repro/columnar/engine.py",
            rules=["fallback-parity"],
        )
        assert finding_rules(report) == ["fallback-parity"]

    def test_mirrored_else_passes(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            class Engine:
                def clear(self, n):
                    if self.use_numpy:
                        as_np(self.isolated)[:n] = 0
                    else:
                        for row in range(n):
                            self.isolated[row] = 0
                    self.round += 1
            """,
            name="repro/columnar/engine.py",
            rules=["fallback-parity"],
        )
        assert report.findings == []

    def test_guarded_return_with_trailing_fallback_passes(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            def census(eng):
                if eng.use_numpy:
                    return int(as_np(eng.alive).sum())
                return sum(eng.alive)
            """,
            name="repro/columnar/engine.py",
            rules=["fallback-parity"],
        )
        assert report.findings == []

    def test_negative_guard_declares_fallback(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            def census(eng, total):
                if not eng.use_numpy:
                    total = sum(eng.alive)
                return total
            """,
            name="repro/columnar/engine.py",
            rules=["fallback-parity"],
        )
        assert report.findings == []

    def test_raise_only_guard_passes(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            def require_numpy(eng):
                if eng.use_numpy:
                    raise RuntimeError("numpy path disabled here")
            """,
            name="repro/columnar/engine.py",
            rules=["fallback-parity"],
        )
        assert report.findings == []

    def test_suppressed(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            def clear(eng, n):
                if eng.use_numpy:  # repro-lint: allow[fallback-parity]
                    as_np(eng.isolated)[:n] = 0
                eng.round += 1
            """,
            name="repro/columnar/engine.py",
            rules=["fallback-parity"],
        )
        assert report.findings == []
        assert report.suppressed == 1


# -------------------------------------------------------------- incremental cache


DIRTY = "import random\nvalue = random.random()\n"


class TestLintCache:
    def _cache(self, tmp_path):
        return LintCache.load(
            tmp_path / "cache.json", ruleset_fingerprint(rule_ids())
        )

    def test_cold_then_warm_identical_findings(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(DIRTY)
        cold_cache = self._cache(tmp_path)
        cold = run_lint([target], allowlist=Allowlist.empty(), cache=cold_cache)
        assert (cold_cache.hits, cold_cache.misses) == (0, 1)
        assert (tmp_path / "cache.json").exists()

        warm_cache = self._cache(tmp_path)
        warm = run_lint([target], allowlist=Allowlist.empty(), cache=warm_cache)
        assert (warm_cache.hits, warm_cache.misses) == (1, 0)
        assert warm.to_json() == cold.to_json()

    def test_mtime_touch_still_hits(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(DIRTY)
        run_lint([target], allowlist=Allowlist.empty(), cache=self._cache(tmp_path))
        os.utime(target, (1_000_000_000, 1_000_000_000))
        warm_cache = self._cache(tmp_path)
        run_lint([target], allowlist=Allowlist.empty(), cache=warm_cache)
        assert (warm_cache.hits, warm_cache.misses) == (1, 0)

    def test_content_edit_refreshes(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(DIRTY)
        run_lint([target], allowlist=Allowlist.empty(), cache=self._cache(tmp_path))
        target.write_text("x = 1\n")
        edited_cache = self._cache(tmp_path)
        report = run_lint(
            [target], allowlist=Allowlist.empty(), cache=edited_cache
        )
        assert (edited_cache.hits, edited_cache.misses) == (0, 1)
        assert report.findings == []

    def test_ruleset_fingerprint_invalidates(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(DIRTY)
        run_lint([target], allowlist=Allowlist.empty(), cache=self._cache(tmp_path))
        stale = LintCache.load(tmp_path / "cache.json", "different-fingerprint")
        assert stale.entries == {}

    def test_suppressions_replay_on_hits(self, tmp_path):
        # An unused suppression must keep tripping the strict audit on warm
        # runs: the cache stores raw findings + the suppression table, not the
        # filtered verdict.
        target = tmp_path / "mod.py"
        target.write_text("x = 1  # repro-lint: allow[wall-clock]\n")
        cold = run_lint(
            [target],
            strict=True,
            allowlist=Allowlist.empty(),
            cache=self._cache(tmp_path),
        )
        warm_cache = self._cache(tmp_path)
        warm = run_lint(
            [target], strict=True, allowlist=Allowlist.empty(), cache=warm_cache
        )
        assert warm_cache.hits == 1
        assert finding_rules(cold) == ["unused-suppression"]
        assert finding_rules(warm) == ["unused-suppression"]

    def test_allowlist_edit_applies_to_cached_files(self, tmp_path):
        # Warm run with a *new* allowlist entry: the cached raw finding must be
        # absorbed (replay, not verdict reuse).
        target = tmp_path / "mod.py"
        target.write_text("import time\nstamp = time.time()\n")
        first = run_lint(
            [target], allowlist=Allowlist.empty(), cache=self._cache(tmp_path)
        )
        assert finding_rules(first) == ["wall-clock"]
        allow = tmp_path / ".repro-lint-allow"
        allow.write_text("wall-clock mod.py *\n")
        warm_cache = self._cache(tmp_path)
        second = run_lint(
            [target], allowlist=Allowlist.load(allow), cache=warm_cache
        )
        assert warm_cache.hits == 1
        assert second.findings == []
        assert second.allowlisted == 1


# ------------------------------------------------------------------ SARIF output


class TestSarifOutput:
    def test_document_shape(self, tmp_path):
        report = lint_source(tmp_path, DIRTY)
        document = report_to_sarif(report)
        assert document["version"] == "2.1.0"
        assert document["$schema"].endswith("sarif-schema-2.1.0.json")
        (run,) = document["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        declared = {rule["id"] for rule in driver["rules"]}
        assert set(rule_ids()) <= declared
        (result,) = run["results"]
        assert result["ruleId"] == "global-rng"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["region"]["startLine"] == 2
        assert location["region"]["startColumn"] >= 1  # SARIF is 1-based
        assert driver["rules"][result["ruleIndex"]]["id"] == "global-rng"

    def test_cli_sarif_format(self, tmp_path, capsys, monkeypatch):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        monkeypatch.chdir(tmp_path)
        assert main(["lint", str(target), "--format", "sarif"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["runs"][0]["results"] == []

    def test_sarif_bytes_deterministic(self, tmp_path):
        from repro.lint import to_sarif_json

        report = lint_source(tmp_path, DIRTY)
        assert to_sarif_json(report) == to_sarif_json(report)


# ----------------------------------------------- allowlist path-form unification


class TestAllowlistPathForm:
    def test_src_prefixed_entry_still_matches(self, tmp_path):
        allow = tmp_path / ".repro-lint-allow"
        allow.write_text("wall-clock src/repro/experiments/runner.py *\n")
        report = lint_source(
            tmp_path,
            "import time\nstamp = time.time()\n",
            name="src/repro/experiments/runner.py",
            allowlist=Allowlist.load(allow),
        )
        assert report.findings == []
        assert report.allowlisted == 1

    def test_strict_rejects_non_canonical_form(self, tmp_path):
        allow = tmp_path / ".repro-lint-allow"
        allow.write_text("wall-clock src/repro/experiments/runner.py *\n")
        report = lint_source(
            tmp_path,
            "import time\nstamp = time.time()\n",
            name="src/repro/experiments/runner.py",
            strict=True,
            allowlist=Allowlist.load(allow),
        )
        assert finding_rules(report) == ["allowlist-path-form"]
        assert "repro/experiments/runner.py" in report.findings[0].message

    def test_canonical_form_is_strict_clean(self, tmp_path):
        allow = tmp_path / ".repro-lint-allow"
        allow.write_text("wall-clock repro/experiments/runner.py *\n")
        report = lint_source(
            tmp_path,
            "import time\nstamp = time.time()\n",
            name="src/repro/experiments/runner.py",
            strict=True,
            allowlist=Allowlist.load(allow),
        )
        assert report.findings == []


# ----------------------------------------------------- --changed from a subdir


class TestChangedFromSubdir:
    def test_untracked_and_modified_found_from_subdirectory(
        self, tmp_path, capsys, monkeypatch
    ):
        repo = tmp_path / "repo"
        (repo / "pkg").mkdir(parents=True)
        env = {
            "GIT_AUTHOR_NAME": "t",
            "GIT_AUTHOR_EMAIL": "t@t",
            "GIT_COMMITTER_NAME": "t",
            "GIT_COMMITTER_EMAIL": "t@t",
        }

        def git(*args):
            subprocess.run(
                ["git", "-C", str(repo), *args],
                check=True,
                capture_output=True,
                env={**env, "PATH": "/usr/bin:/bin"},
            )

        git("init", "-q")
        tracked = repo / "pkg" / "tracked.py"
        tracked.write_text("x = 1\n")
        git("add", "pkg/tracked.py")
        git("commit", "-qm", "seed")
        # One modified tracked file + one brand-new untracked file, both dirty.
        tracked.write_text("import time\nstamp = time.time()\n")
        untracked = repo / "pkg" / "fresh.py"
        untracked.write_text("import random\nvalue = random.random()\n")

        # The regression: from a subdirectory, git's toplevel-relative diff
        # names used to be joined onto the subdir and silently dropped.
        monkeypatch.chdir(repo / "pkg")
        assert main(["lint", "--changed", "."]) == 1
        out = capsys.readouterr().out
        assert "tracked.py" in out
        assert "fresh.py" in out
