"""Columnar engine tests: flat-array protocol state, backend bit-parity, the
engine axis of the experiment matrix, and the ``scale`` scenario kind.

The load-bearing invariants:

* numpy and pure-array backends produce **bit-identical** state (fingerprints);
* the engine axis is additive — cells at ``engine="object"`` keep their exact
  pre-axis keys, so no legacy derived seed moves;
* the columnar scenario implements the capability API, so probes, timelines and
  churn drive it unmodified;
* engine-native streamed statistics equal the per-node facade collection.
"""

import copy
import math

import pytest

from repro.columnar import COLUMNAR_PROTOCOLS, ColumnarEngine, ColumnarScenario
from repro.columnar.backend import HAVE_NUMPY
from repro.errors import ConfigurationError, ExperimentError
from repro.membership.capabilities import NatAware, OverlaySampling, RatioEstimating
from repro.metrics.probes import collect_ratio_estimates
from repro.workload.scenario import (
    ENGINES,
    Scenario,
    ScenarioConfig,
    create_scenario,
)
from repro.workload.timeline import get_timeline

BACKENDS = [False, True] if HAVE_NUMPY else [False]


def columnar_config(seed=7, **kwargs):
    kwargs.setdefault("protocol", "croupier")
    kwargs.setdefault("latency", "constant")
    return ScenarioConfig(seed=seed, engine="columnar", **kwargs)


def make_scenario(seed=7, n_public=20, n_private=80, use_numpy=None, **kwargs):
    scenario = ColumnarScenario(columnar_config(seed=seed, **kwargs), use_numpy=use_numpy)
    scenario.populate(n_public, n_private)
    return scenario


# --------------------------------------------------------------------- engine core


class TestColumnarEngine:
    @pytest.mark.parametrize("use_numpy", BACKENDS)
    def test_views_fill_and_age(self, use_numpy):
        import random

        engine = ColumnarEngine(
            "croupier", view_size=10, shuffle_size=5,
            rng=random.Random(1), use_numpy=use_numpy,
        )
        rows = [engine.add_node(public=True) for _ in range(30)]
        for _ in range(10):
            engine.run_round()
        # Every node's public view holds only live public peers, never itself.
        for row in rows:
            ids = engine.view_ids(row)
            assert ids, "views must fill after 10 rounds"
            assert row not in ids
            assert all(other in rows for other in ids)

    @pytest.mark.parametrize("use_numpy", BACKENDS)
    def test_estimates_converge(self, use_numpy):
        import random

        engine = ColumnarEngine(
            "croupier", view_size=10, shuffle_size=5,
            rng=random.Random(2), use_numpy=use_numpy,
        )
        for index in range(100):
            engine.add_node(public=index < 20)
        for _ in range(30):
            engine.run_round()
        measured, mean, avg_err, max_err = engine.estimate_stats(0.2)
        assert measured == 100
        # N=100 is small for the estimator: the sampling variance alone is a few
        # hundredths, so this is a convergence smoke, not a precision bound.
        assert abs(mean - 0.2) < 0.1
        assert avg_err < 0.15
        assert max_err <= 1.0

    def test_rejects_unknown_protocol(self):
        import random

        with pytest.raises(ConfigurationError):
            ColumnarEngine("newscast", view_size=10, shuffle_size=5,
                           rng=random.Random(1))

    @pytest.mark.skipif(not HAVE_NUMPY, reason="needs numpy for the comparison")
    def test_backends_bit_identical(self):
        """The engine's golden invariant: numpy vectorisation never changes a bit."""
        import random

        fingerprints = []
        for use_numpy in (False, True):
            engine = ColumnarEngine(
                "croupier", view_size=10, shuffle_size=5,
                rng=random.Random(11), use_numpy=use_numpy,
            )
            for index in range(60):
                engine.add_node(public=index % 5 == 0)
            for round_index in range(25):
                if round_index == 12:
                    engine.kill(5)
                    engine.add_node(public=False)
                engine.run_round()
            fingerprints.append(engine.fingerprint())
        assert fingerprints[0] == fingerprints[1]

    @pytest.mark.parametrize("use_numpy", BACKENDS)
    def test_estimate_stats_equals_facade_collection(self, use_numpy):
        scenario = make_scenario(seed=5, use_numpy=use_numpy)
        scenario.run_rounds(15)
        true_ratio = scenario.true_ratio()
        measured, mean, avg_err, max_err = scenario.engine.estimate_stats(true_ratio)
        estimates = [e for e in collect_ratio_estimates(scenario) if e is not None]
        assert measured == len(estimates)
        assert mean == sum(estimates) / len(estimates)
        deviations = [abs(true_ratio - e) for e in estimates]
        assert avg_err == sum(deviations) / len(deviations)
        assert max_err == max(deviations)

    @pytest.mark.parametrize("use_numpy", BACKENDS)
    def test_in_degree_histogram_counts_live_edges(self, use_numpy):
        scenario = make_scenario(seed=6, n_public=10, n_private=30,
                                 use_numpy=use_numpy)
        scenario.run_rounds(10)
        histogram = scenario.engine.in_degree_histogram().to_histogram()
        live = scenario.live_count()
        assert sum(histogram.values()) == live
        total_edges = sum(bin_ * count for bin_, count in histogram.items())
        graph = scenario.overlay_graph()
        assert total_edges == sum(len(view) for view in graph.values())


# ----------------------------------------------------------------- scenario facade


class TestColumnarScenario:
    def test_capability_api(self):
        scenario = make_scenario()
        assert scenario.supports(OverlaySampling)
        assert scenario.supports(RatioEstimating)
        services = list(scenario.services_with(RatioEstimating))
        assert len(services) == 100
        service = services[0]
        assert service.current_round >= 0
        estimate = service.estimated_ratio()
        assert estimate is None or 0.0 <= estimate <= 1.0

    def test_cyclon_has_no_estimation(self):
        scenario = make_scenario(protocol="cyclon")
        assert scenario.supports(OverlaySampling)
        assert not scenario.supports(RatioEstimating)
        assert collect_ratio_estimates(scenario) == []

    def test_rejects_object_only_features(self):
        with pytest.raises(ConfigurationError):
            ColumnarScenario(columnar_config(identify_nat_types=True))
        with pytest.raises(ConfigurationError):
            ColumnarScenario(ScenarioConfig(protocol="croupier", seed=1))

    def test_determinism_same_seed_same_fingerprint(self):
        runs = []
        for _ in range(2):
            scenario = make_scenario(seed=13)
            scenario.run_rounds(12)
            runs.append(scenario.engine.fingerprint())
        assert runs[0] == runs[1]

    def test_clone_continues_bit_identically(self):
        scenario = make_scenario(seed=14)
        scenario.run_rounds(8)
        clone = scenario.clone()
        scenario.run_rounds(7)
        clone.run_rounds(7)
        assert scenario.engine.fingerprint() == clone.engine.fingerprint()

    def test_churn_replaces_population(self):
        scenario = make_scenario(seed=15)
        scenario.run_rounds(5)
        before = scenario.live_count()
        scenario.churn_step(0.1)
        assert scenario.live_count() == before
        assert abs(scenario.true_ratio() - 0.2) < 0.1

    def test_timeline_installs_and_fires(self):
        scenario = make_scenario(seed=16, n_public=12, n_private=48)
        timeline = get_timeline("paper-failure")
        installed = timeline.install(scenario, horizon_rounds=70)
        installed.advance_rounds(65)
        # Half the population dies at the t=61 boundary.
        assert scenario.live_count() == 30

    def test_overhead_public_exceeds_private(self):
        scenario = make_scenario(seed=17)
        scenario.run_rounds(10)
        start = scenario.traffic_snapshot()
        scenario.run_rounds(10)
        monitor = scenario.monitor
        public = monitor.average_load_bps(
            start, scenario.now,
            node_filter=set(scenario.live_public_ids()).__contains__,
        )
        private = monitor.average_load_bps(
            start, scenario.now,
            node_filter=set(scenario.live_private_ids()).__contains__,
        )
        assert public > private > 0.0


# ------------------------------------------------------------------- engine axis


class TestEngineAxis:
    def test_engines_vocabulary(self):
        assert ENGINES == ("object", "columnar")
        assert set(COLUMNAR_PROTOCOLS) == {"croupier", "cyclon", "gozar", "nylon"}

    def test_create_scenario_dispatch(self):
        assert isinstance(
            create_scenario(ScenarioConfig(protocol="croupier", seed=1)), Scenario
        )
        assert isinstance(create_scenario(columnar_config()), ColumnarScenario)

    def test_object_scenario_rejects_columnar_config(self):
        with pytest.raises(ConfigurationError):
            Scenario(columnar_config())

    def test_default_engine_keeps_legacy_cell_keys(self):
        """The axis is additive: engine=object cells carry the exact pre-axis key."""
        from repro.experiments.matrix import CellSpec

        legacy = CellSpec(scenario="static", protocol="croupier", size=60,
                          seed_index=0, rounds=10)
        assert "engine" not in legacy.key
        columnar = CellSpec(scenario="static", protocol="croupier", size=60,
                            seed_index=0, rounds=10, engine="columnar")
        assert ";engine=columnar" in columnar.key
        assert columnar.key.replace(";engine=columnar", "") == legacy.key

    def test_columnar_cell_seed_differs_from_object(self):
        from repro.experiments.matrix import CellSpec, derive_cell_seed

        base = dict(scenario="static", protocol="croupier", size=60,
                    seed_index=0, rounds=10)
        assert derive_cell_seed(42, CellSpec(**base).key) != derive_cell_seed(
            42, CellSpec(engine="columnar", **base).key
        )

    def test_matrix_validates_columnar_protocols(self):
        from repro.experiments.matrix import MatrixSpec

        spec = MatrixSpec(scenarios=("static",), protocols=("newscast",),
                          sizes=(20,), seeds=1, rounds=5,
                          engines=("columnar",))
        with pytest.raises(ExperimentError):
            spec.validate()

    def test_matrix_runs_both_engines(self):
        from repro.experiments.matrix import MatrixSpec
        from repro.experiments.runner import run_matrix

        spec = MatrixSpec(scenarios=("static",), protocols=("croupier",),
                          sizes=(40,), seeds=1, rounds=8, latency="constant",
                          engines=("object", "columnar"))
        result = run_matrix(spec, workers=1)
        assert not result.failed
        groups = result.aggregate["groups"]
        assert set(groups) == {
            "scenario=static;protocol=croupier;size=40",
            "scenario=static;protocol=croupier;engine=columnar;size=40",
        }
        for metrics in groups.values():
            assert 0.0 < metrics["est_mean"]["mean"] < 1.0


# -------------------------------------------------------------------- scale kind


class TestScaleKind:
    def test_scale_cell_runs_on_both_engines(self):
        from repro.experiments.matrix import MatrixSpec
        from repro.experiments.runner import run_matrix

        spec = MatrixSpec(scenarios=("scale",), protocols=("croupier",),
                          sizes=(50,), seeds=1, rounds=12, latency="constant",
                          engines=("object", "columnar"))
        result = run_matrix(spec, workers=1)
        assert not result.failed
        for payload in (r.payload for r in result.results):
            assert "est_err_avg_final" in payload.scalars
            assert "est_nodes_measured" in payload.scalars
            assert "in_degree" in payload.histograms
            assert "est_err_avg" in payload.series
            # No graph walks at scale: the GraphProbe-only metrics are absent.
            assert "path_length" not in payload.scalars
            assert "clustering" not in payload.scalars

    def test_scale_invariance_report_section(self):
        from repro.experiments.matrix import MatrixSpec
        from repro.experiments.report import matrix_markdown_summary
        from repro.experiments.runner import run_matrix

        spec = MatrixSpec(scenarios=("scale",), protocols=("croupier",),
                          sizes=(40, 80), seeds=1, rounds=10, latency="constant",
                          engines=("columnar",))
        summary = matrix_markdown_summary(run_matrix(spec, workers=1).aggregate)
        assert "## Scale invariance" in summary
        assert "| columnar | 40 |" in summary
        assert "| columnar | 80 |" in summary

    def test_legacy_report_has_no_scale_section(self):
        from repro.experiments.matrix import MatrixSpec
        from repro.experiments.report import matrix_markdown_summary
        from repro.experiments.runner import run_matrix

        spec = MatrixSpec(scenarios=("static",), protocols=("croupier",),
                          sizes=(30,), seeds=1, rounds=5, latency="constant")
        summary = matrix_markdown_summary(run_matrix(spec, workers=1).aggregate)
        assert "Scale invariance" not in summary

    def test_run_scale_experiment_harness(self):
        from repro.experiments.scale import run_scale_experiment

        result = run_scale_experiment(nodes=300, rounds=20, seed=3,
                                      churn_fraction=0.02, measure_every=2)
        assert [v.label for v in result.variants] == ["static", "churn"]
        for variant in result.variants:
            assert variant.nodes_measured > 0
            assert variant.final_avg_error is not None
            assert variant.node_rounds_per_sec > 0
            assert variant.peak_rss_mb > 0
            assert variant.est_scatter
            assert all(0.0 <= value <= 1.0 for value in variant.est_scatter)
        text = result.to_text()
        assert "static" in text and "churn" in text
        assert "estimate scatter" in text

    def test_scale_cell_records_estimate_scatter(self):
        from repro.experiments.matrix import MatrixSpec
        from repro.experiments.runner import run_matrix
        from repro.experiments.scale import SCATTER_CAPACITY

        spec = MatrixSpec(scenarios=("scale",), protocols=("croupier",),
                          sizes=(50,), seeds=1, rounds=12, latency="constant",
                          engines=("object", "columnar"))
        result = run_matrix(spec, workers=1)
        assert not result.failed
        by_engine = {
            ("columnar" if "engine=columnar" in r.cell.key else "object"): r.payload
            for r in result.results
        }
        scatter = by_engine["columnar"].series["est_scatter"]
        assert 0 < len(scatter) <= SCATTER_CAPACITY
        assert all(0.0 <= value <= 1.0 for _idx, value in scatter)
        # Object cells keep the facade path and record no scatter series.
        assert "est_scatter" not in by_engine["object"].series

    def test_scatter_is_deterministic(self):
        from repro.experiments.scale import sample_estimate_scatter

        samples = []
        for _ in range(2):
            scenario = make_scenario(seed=31, n_public=40, n_private=160)
            scenario.run_rounds(12)
            samples.append(sample_estimate_scatter(scenario))
        assert samples[0] == samples[1]
        assert samples[0]


# ------------------------------------------------------- NAT protocol ports


NAT_PROTOCOLS = ("gozar", "nylon")


class TestNatProtocolPorts:
    """Gozar and Nylon on the columnar engine: parity, capabilities, cell keys."""

    @pytest.mark.skipif(not HAVE_NUMPY, reason="needs numpy for the comparison")
    @pytest.mark.parametrize("protocol", NAT_PROTOCOLS)
    def test_backends_bit_identical(self, protocol):
        import random

        fingerprints = []
        for use_numpy in (False, True):
            engine = ColumnarEngine(
                protocol, view_size=10, shuffle_size=5,
                rng=random.Random(23), use_numpy=use_numpy,
            )
            for index in range(60):
                engine.add_node(public=index % 5 == 0)
            for round_index in range(25):
                if round_index == 12:
                    engine.kill(5)
                    engine.add_node(public=False)
                engine.run_round()
            fingerprints.append(engine.fingerprint())
        assert fingerprints[0] == fingerprints[1]

    @pytest.mark.parametrize("protocol", NAT_PROTOCOLS)
    def test_capability_dispatch(self, protocol):
        scenario = make_scenario(protocol=protocol)
        assert scenario.supports(OverlaySampling)
        assert scenario.supports(NatAware)
        assert not scenario.supports(RatioEstimating)
        service = next(iter(scenario.services_with(NatAware)))
        expected = "relay" if protocol == "gozar" else "hole-punching"
        assert service.private_peer_strategy() == expected

    def test_croupier_strategy_unchanged(self):
        scenario = make_scenario()
        service = next(iter(scenario.services_with(NatAware)))
        assert service.private_peer_strategy() == "croupier-indirection"

    @pytest.mark.parametrize("protocol", NAT_PROTOCOLS)
    def test_in_degree_histogram_matches_graph(self, protocol):
        """Engine-native streamed stats equal the per-node facade collection."""
        scenario = make_scenario(protocol=protocol, seed=24, n_public=10,
                                 n_private=30)
        scenario.run_rounds(12)
        histogram = scenario.engine.in_degree_histogram().to_histogram()
        assert sum(histogram.values()) == scenario.live_count()
        total_edges = sum(bin_ * count for bin_, count in histogram.items())
        graph = scenario.overlay_graph()
        assert total_edges == sum(len(view) for view in graph.values())

    @pytest.mark.parametrize("protocol", NAT_PROTOCOLS)
    def test_views_fill_and_private_nodes_reached(self, protocol):
        scenario = make_scenario(protocol=protocol, seed=25)
        scenario.run_rounds(20)
        graph = scenario.overlay_graph()
        assert sum(len(view) for view in graph.values()) > 0
        # NAT traversal working: some private node appears in somebody's view.
        private = set(scenario.live_private_ids())
        reached = {peer for view in graph.values() for peer in view}
        assert reached & private

    @pytest.mark.parametrize("protocol", NAT_PROTOCOLS)
    def test_legacy_cell_keys_unchanged(self, protocol):
        from repro.experiments.matrix import CellSpec

        base = dict(scenario="static", protocol=protocol, size=60,
                    seed_index=0, rounds=10)
        legacy = CellSpec(**base)
        assert "engine" not in legacy.key
        columnar = CellSpec(engine="columnar", **base)
        assert columnar.key.replace(";engine=columnar", "") == legacy.key

    def test_matrix_validates_all_paper_protocols_on_columnar(self):
        from repro.experiments.matrix import MatrixSpec

        spec = MatrixSpec(scenarios=("static",), protocols=COLUMNAR_PROTOCOLS,
                          sizes=(20,), seeds=1, rounds=5, latency="constant",
                          engines=("columnar",))
        spec.validate()

    def test_unsupported_protocol_error_names_object_engine(self):
        with pytest.raises(ConfigurationError, match="engine='object'"):
            ColumnarScenario(columnar_config(protocol="arrg"))


# ----------------------------------------------------------- cross-engine checks


class TestCrossEngine:
    def test_estimator_means_agree(self):
        """The CI equivalence contract, in-process: both engines' mean estimates
        converge to ω on the same population within loose tolerance."""
        results = {}
        for engine in ENGINES:
            scenario = create_scenario(
                ScenarioConfig(protocol="croupier", seed=9, latency="constant",
                               engine=engine)
            )
            scenario.populate(20, 80)
            scenario.run_rounds(40)
            estimates = [e for e in collect_ratio_estimates(scenario)
                         if e is not None]
            results[engine] = sum(estimates) / len(estimates)
        assert abs(results["object"] - results["columnar"]) < 0.05
        for mean in results.values():
            assert math.isfinite(mean)

    def test_deepcopy_preserves_backend_choice(self):
        scenario = make_scenario(seed=21, use_numpy=False)
        clone = copy.deepcopy(scenario)
        assert clone.engine.use_numpy is False
