"""Tests for the scenario builder and the workload processes."""

import pytest

from repro.errors import ConfigurationError, ExperimentError
from repro.workload.churn import ChurnProcess
from repro.workload.failure import catastrophic_failure
from repro.workload.ipalloc import IpAllocator
from repro.workload.join import PoissonJoinProcess, paper_join_processes, scaled_join_processes
from repro.workload.ratio import RatioGrowthProcess
from repro.workload.scenario import Scenario, ScenarioConfig


class TestIpAllocator:
    def test_categories_are_disjoint_prefixes(self):
        alloc = IpAllocator()
        assert alloc.public_ip().startswith("1.")
        assert alloc.nat_external_ip().startswith("2.")
        assert alloc.infrastructure_ip().startswith("3.")
        assert alloc.private_ip().startswith("10.")

    def test_uniqueness(self):
        alloc = IpAllocator()
        ips = {alloc.public_ip() for _ in range(1000)}
        assert len(ips) == 1000
        assert alloc.allocated("public") == 1000


class TestScenarioConfig:
    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(protocol="chord").validate()

    def test_loss_rate_validated(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(loss_rate=1.5).validate()

    def test_unknown_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario(ScenarioConfig(latency="warp"))


class TestScenarioBasics:
    def test_populate_counts_and_ratio(self):
        scenario = Scenario(ScenarioConfig(seed=1, latency="constant"))
        scenario.populate(n_public=10, n_private=40)
        assert scenario.live_count() == 50
        assert len(scenario.live_public_ids()) == 10
        assert len(scenario.live_private_ids()) == 40
        assert scenario.true_ratio() == pytest.approx(0.2)

    def test_registry_contains_only_public_nodes(self):
        scenario = Scenario(ScenarioConfig(seed=1, latency="constant"))
        scenario.populate(n_public=5, n_private=5)
        assert len(scenario.registry) == 5

    def test_private_nodes_sit_behind_nats(self):
        scenario = Scenario(ScenarioConfig(seed=1, latency="constant"))
        scenario.populate(n_public=2, n_private=3)
        private_handles = [h for h in scenario.live_handles() if not h.is_public]
        assert all(h.natbox is not None for h in private_handles)
        assert all(h.host.natbox is not None for h in private_handles)

    def test_initial_views_seeded_from_registry(self):
        scenario = Scenario(ScenarioConfig(seed=1, latency="constant"))
        scenario.populate(n_public=5, n_private=5)
        late = scenario.add_private_node()
        assert len(late.pss.neighbor_addresses()) > 0

    def test_run_rounds_advances_time(self):
        scenario = Scenario(ScenarioConfig(seed=1, latency="constant"))
        scenario.populate(2, 2)
        scenario.run_rounds(3)
        assert scenario.now == pytest.approx(3 * scenario.round_ms)

    def test_kill_and_unregister(self):
        scenario = Scenario(ScenarioConfig(seed=1, latency="constant"))
        scenario.populate(n_public=3, n_private=3)
        victim = scenario.live_public_ids()[0]
        scenario.kill(victim)
        assert victim not in scenario.registry
        assert scenario.live_count() == 5
        scenario.kill(victim)  # idempotent

    def test_kill_random_fraction(self):
        scenario = Scenario(ScenarioConfig(seed=1, latency="constant"))
        scenario.populate(n_public=10, n_private=10)
        killed = scenario.kill_random_fraction(0.5)
        assert len(killed) == 10
        assert scenario.live_count() == 10
        with pytest.raises(ExperimentError):
            scenario.kill_random_fraction(1.5)

    def test_churn_step_preserves_population_and_ratio(self):
        scenario = Scenario(ScenarioConfig(seed=1, latency="constant"))
        scenario.populate(n_public=10, n_private=40)
        replaced = scenario.churn_step(0.2)
        assert replaced > 0
        assert scenario.live_count() == 50
        assert scenario.true_ratio() == pytest.approx(0.2)

    def test_overlay_graph_only_contains_live_nodes(self):
        scenario = Scenario(ScenarioConfig(seed=1, latency="constant"))
        scenario.populate(n_public=5, n_private=10)
        scenario.run_rounds(10)
        victims = scenario.kill_random_fraction(0.4)
        graph = scenario.overlay_graph()
        assert all(victim not in graph for victim in victims)
        assert all(
            neighbour not in victims for edges in graph.values() for neighbour in edges
        )

    def test_ratio_estimates_exclude_young_nodes(self):
        from repro.metrics.probes import collect_ratio_estimates

        scenario = Scenario(ScenarioConfig(seed=1, latency="constant"))
        scenario.populate(n_public=4, n_private=8)
        assert collect_ratio_estimates(scenario, min_rounds=2) == []
        scenario.run_rounds(5)
        assert len(collect_ratio_estimates(scenario, min_rounds=2)) == 12

    def test_pss_of_unknown_node_raises(self):
        scenario = Scenario(ScenarioConfig(seed=1, latency="constant"))
        with pytest.raises(ExperimentError):
            scenario.pss_of(12345)

    def test_upnp_fraction_creates_public_behaving_nated_nodes(self):
        scenario = Scenario(
            ScenarioConfig(seed=3, latency="constant", upnp_fraction=1.0)
        )
        scenario.populate(n_public=2, n_private=6)
        # All "private" nodes have UPnP gateways, so everyone counts as public.
        assert scenario.true_ratio() == pytest.approx(1.0)
        scenario.run_rounds(10)
        # And they actually receive shuffle requests (they are reachable).
        nated = [h for h in scenario.live_handles() if h.natbox is not None]
        assert any(h.pss.stats.shuffle_requests_handled > 0 for h in nated)

    def test_identify_nat_types_matches_ground_truth(self):
        scenario = Scenario(
            ScenarioConfig(seed=2, latency="constant", identify_nat_types=True)
        )
        # Public nodes join one at a time with enough spacing for each identification
        # run (timeout 4 s) to finish before the next join; private nodes can join in a
        # burst because their verdict never depends on other pending identifications.
        for _ in range(5):
            scenario.add_public_node()
            scenario.run_ms(5_000.0)
        for _ in range(10):
            scenario.add_private_node()
        scenario.run_rounds(12)
        handles = scenario.live_handles()
        assert len(handles) == 15
        identified_public = sum(1 for h in handles if h.address.is_public)
        identified_private = sum(1 for h in handles if h.address.is_private)
        assert identified_public == 5
        assert identified_private == 10
        # The system still works: estimates exist and are sane.
        from repro.metrics.probes import collect_ratio_estimates

        estimates = [e for e in collect_ratio_estimates(scenario) if e is not None]
        assert estimates and all(0.0 <= e <= 1.0 for e in estimates)


class TestJoinProcesses:
    def test_poisson_join_creates_expected_population(self):
        scenario = Scenario(ScenarioConfig(seed=4, latency="constant"))
        process = PoissonJoinProcess(
            scenario, public=True, count=20, mean_interarrival_ms=10.0
        )
        scenario.run_ms(10_000.0)
        assert process.finished
        assert len(scenario.live_public_ids()) == 20

    def test_join_validation(self):
        scenario = Scenario(ScenarioConfig(seed=4, latency="constant"))
        with pytest.raises(ExperimentError):
            PoissonJoinProcess(scenario, public=True, count=-1, mean_interarrival_ms=10.0)
        with pytest.raises(ExperimentError):
            PoissonJoinProcess(scenario, public=True, count=1, mean_interarrival_ms=0.0)

    def test_paper_join_processes_scaled_down(self):
        scenario = Scenario(ScenarioConfig(seed=4, latency="constant"))
        public, private = paper_join_processes(
            scenario, n_public=5, n_private=20,
            public_interarrival_ms=5.0, private_interarrival_ms=1.0,
        )
        scenario.run_ms(2_000.0)
        assert public.finished and private.finished
        assert scenario.live_count() == 25

    def test_scaled_join_processes_ratio(self):
        scenario = Scenario(ScenarioConfig(seed=4, latency="constant"))
        scaled_join_processes(scenario, total_nodes=30, public_ratio=0.2, join_window_ms=500.0)
        scenario.run_ms(5_000.0)
        assert scenario.live_count() == 30
        assert scenario.true_ratio() == pytest.approx(0.2, abs=0.05)

    def test_scaled_join_validation(self):
        scenario = Scenario(ScenarioConfig(seed=4, latency="constant"))
        with pytest.raises(ExperimentError):
            scaled_join_processes(scenario, total_nodes=10, public_ratio=0.0)


class TestChurnProcess:
    def test_churn_replaces_nodes_each_round(self):
        scenario = Scenario(ScenarioConfig(seed=5, latency="constant"))
        scenario.populate(n_public=10, n_private=40)
        process = ChurnProcess(scenario, fraction_per_round=0.1, start_ms=0.0)
        scenario.run_rounds(10)
        assert process.total_replaced > 10
        assert scenario.live_count() == 50

    def test_churn_stops_at_stop_ms(self):
        scenario = Scenario(ScenarioConfig(seed=5, latency="constant"))
        scenario.populate(n_public=10, n_private=10)
        process = ChurnProcess(
            scenario, fraction_per_round=0.5, start_ms=0.0, stop_ms=3_000.0
        )
        scenario.run_rounds(10)
        replaced_at_stop = process.total_replaced
        scenario.run_rounds(5)
        assert process.total_replaced == replaced_at_stop

    def test_churn_validation(self):
        scenario = Scenario(ScenarioConfig(seed=5, latency="constant"))
        with pytest.raises(ExperimentError):
            ChurnProcess(scenario, fraction_per_round=2.0)

    def test_replacement_rate_conversion(self):
        scenario = Scenario(ScenarioConfig(seed=5, latency="constant"))
        process = ChurnProcess(scenario, fraction_per_round=0.01)
        assert process.replacement_rate_per_second == pytest.approx(0.01)


class TestRatioGrowth:
    def test_growth_adds_public_nodes(self):
        scenario = Scenario(ScenarioConfig(seed=6, latency="constant"))
        scenario.populate(n_public=5, n_private=15)
        before = scenario.true_ratio()
        process = RatioGrowthProcess(scenario, start_ms=1_000.0, interval_ms=100.0, count=10)
        scenario.run_ms(3_000.0)
        assert process.finished
        assert scenario.true_ratio() > before
        assert len(scenario.live_public_ids()) == 15

    def test_growth_validation(self):
        scenario = Scenario(ScenarioConfig(seed=6, latency="constant"))
        with pytest.raises(ExperimentError):
            RatioGrowthProcess(scenario, start_ms=0.0, interval_ms=0.0, count=5)

    def test_end_ms(self):
        scenario = Scenario(ScenarioConfig(seed=6, latency="constant"))
        process = RatioGrowthProcess(scenario, start_ms=100.0, interval_ms=50.0, count=3)
        assert process.end_ms == pytest.approx(200.0)


class TestCatastrophicFailure:
    def test_failure_outcome_fields(self):
        scenario = Scenario(ScenarioConfig(seed=7, latency="constant"))
        scenario.populate(n_public=10, n_private=30)
        scenario.run_rounds(15)
        outcome = catastrophic_failure(scenario, 0.5)
        assert outcome.survivors == 20
        assert len(outcome.killed_node_ids) == 20
        assert 0.0 <= outcome.biggest_cluster_fraction <= 1.0

    def test_failure_validation(self):
        scenario = Scenario(ScenarioConfig(seed=7, latency="constant"))
        scenario.populate(2, 2)
        with pytest.raises(ExperimentError):
            catastrophic_failure(scenario, 1.5)

    def test_settle_rounds_runs_protocol_after_failure(self):
        scenario = Scenario(ScenarioConfig(seed=7, latency="constant"))
        scenario.populate(n_public=6, n_private=12)
        scenario.run_rounds(10)
        outcome = catastrophic_failure(scenario, 0.3, settle_rounds=3)
        assert outcome.survivors == scenario.live_count()
        assert scenario.now >= 13 * scenario.round_ms
