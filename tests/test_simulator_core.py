"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.simulator.core import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self, sim):
        order = []
        sim.schedule(30, lambda: order.append("c"))
        sim.schedule(10, lambda: order.append("a"))
        sim.schedule(20, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_fifo(self, sim):
        order = []
        for label in "abcd":
            sim.schedule(5, lambda label=label: order.append(label))
        sim.run()
        assert order == ["a", "b", "c", "d"]

    def test_clock_advances_to_event_time(self, sim):
        sim.schedule(42.5, lambda: None)
        sim.run()
        assert sim.now == pytest.approx(42.5)

    def test_schedule_in_past_rejected(self, sim):
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5, lambda: None)

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_cancel_prevents_execution(self, sim):
        fired = []
        handle = sim.schedule(10, lambda: fired.append(1))
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        handle = sim.schedule(10, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_events_scheduled_from_callbacks(self, sim):
        order = []

        def first():
            order.append("first")
            sim.schedule(5, lambda: order.append("nested"))

        sim.schedule(10, first)
        sim.schedule(20, lambda: order.append("second"))
        sim.run()
        assert order == ["first", "nested", "second"]
        assert sim.now == pytest.approx(20)


class TestRunControl:
    def test_run_until_stops_before_later_events(self, sim):
        fired = []
        sim.schedule(10, lambda: fired.append("early"))
        sim.schedule(100, lambda: fired.append("late"))
        sim.run(until=50)
        assert fired == ["early"]
        assert sim.now == pytest.approx(50)
        sim.run()
        assert fired == ["early", "late"]

    def test_run_until_executes_events_at_horizon(self, sim):
        fired = []
        sim.schedule(50, lambda: fired.append(1))
        sim.run(until=50)
        assert fired == [1]

    def test_run_for_is_relative(self, sim):
        sim.schedule(10, lambda: None)
        sim.run_for(30)
        assert sim.now == pytest.approx(30)
        sim.run_for(30)
        assert sim.now == pytest.approx(60)

    def test_max_events_limits_execution(self, sim):
        fired = []
        for index in range(10):
            sim.schedule(index + 1, lambda index=index: fired.append(index))
        executed = sim.run(max_events=3)
        assert executed == 3
        assert fired == [0, 1, 2]

    def test_step_on_empty_queue(self, sim):
        assert sim.step() is False

    def test_pending_and_executed_counters(self, sim):
        sim.schedule(1, lambda: None)
        handle = sim.schedule(2, lambda: None)
        handle.cancel()
        assert sim.pending_events == 1
        sim.run()
        assert sim.events_executed == 1

    def test_events_executed_counts_only_live_callbacks(self, sim):
        """Cancelled events are skipped (exactly once per heap pop) and never counted."""
        fired = []
        handles = [
            sim.schedule(index + 1, lambda index=index: fired.append(index))
            for index in range(10)
        ]
        for handle in handles[::2]:
            handle.cancel()
        executed = sim.run()
        assert executed == 5
        assert sim.events_executed == 5
        assert fired == [1, 3, 5, 7, 9]
        assert sim.pending_events == 0

    def test_pending_events_counter_tracks_cancel_and_execution(self, sim):
        handles = [sim.schedule(i + 1, lambda: None) for i in range(4)]
        assert sim.pending_events == 4
        handles[0].cancel()
        handles[0].cancel()  # idempotent: must not double-decrement
        assert sim.pending_events == 3
        sim.run(until=2)
        assert sim.pending_events == 2
        # Cancelling an already-executed handle must not corrupt the counter.
        handles[1].cancel()
        assert sim.pending_events == 2
        sim.run()
        assert sim.pending_events == 0
        assert sim.events_executed == 3

    def test_schedule_with_argument_slot(self, sim):
        """The (callback, arg) slot delivers the argument without a closure."""
        received = []
        sim.schedule(5, received.append, "packet")
        sim.schedule(6, received.append, None)  # None is a legitimate argument
        sim.run()
        assert received == ["packet", None]

    def test_max_events_does_not_count_cancelled_events(self, sim):
        fired = []
        keep = sim.schedule(1, lambda: fired.append("keep"))
        for i in range(5):
            sim.schedule(2 + i, lambda: fired.append("cancelled")).cancel()
        sim.schedule(10, lambda: fired.append("late"))
        executed = sim.run(max_events=2)
        assert executed == 2
        assert fired == ["keep", "late"]
        assert keep.callback is None


class TestRngDerivation:
    def test_same_labels_same_stream(self):
        a = Simulator(seed=7).derive_rng("croupier", 12)
        b = Simulator(seed=7).derive_rng("croupier", 12)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_labels_different_streams(self):
        sim = Simulator(seed=7)
        a = sim.derive_rng("croupier", 12)
        b = sim.derive_rng("croupier", 13)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_seed_different_streams(self):
        a = Simulator(seed=7).derive_rng("x")
        b = Simulator(seed=8).derive_rng("x")
        assert a.random() != b.random()
