"""Unit tests for the NAT substrate: bindings, policies, UPnP, firewall, allocator."""

import pytest

from repro.errors import ConfigurationError, NatError
from repro.nat.allocator import AllocationPolicy, PortAllocator
from repro.nat.firewall import FirewallBox
from repro.nat.nat_box import NatBox
from repro.nat.types import FilteringPolicy, MappingPolicy, NatProfile
from repro.nat.upnp import UpnpNatBox
from repro.net.address import Endpoint

INTERNAL = Endpoint("10.0.0.1", 7000)
REMOTE_A = Endpoint("1.0.0.1", 7000)
REMOTE_B = Endpoint("1.0.0.2", 7000)
REMOTE_A_OTHER_PORT = Endpoint("1.0.0.1", 9000)


class TestNatProfile:
    def test_presets(self):
        assert NatProfile.full_cone().filtering is FilteringPolicy.ENDPOINT_INDEPENDENT
        assert NatProfile.restricted_cone().filtering is FilteringPolicy.ADDRESS_DEPENDENT
        assert (
            NatProfile.port_restricted_cone().filtering
            is FilteringPolicy.ADDRESS_PORT_DEPENDENT
        )
        assert NatProfile.symmetric().mapping is MappingPolicy.ADDRESS_PORT_DEPENDENT

    def test_invalid_timeout(self):
        with pytest.raises(ConfigurationError):
            NatProfile(mapping_timeout_ms=0)


class TestOutboundTranslation:
    def test_port_preserved_when_free(self):
        nat = NatBox("2.0.0.1")
        wire = nat.translate_outbound(INTERNAL, REMOTE_A, now=0.0)
        assert wire == Endpoint("2.0.0.1", 7000)

    def test_endpoint_independent_mapping_reused_across_destinations(self):
        nat = NatBox("2.0.0.1", profile=NatProfile.full_cone())
        first = nat.translate_outbound(INTERNAL, REMOTE_A, now=0.0)
        second = nat.translate_outbound(INTERNAL, REMOTE_B, now=1.0)
        assert first == second
        assert nat.active_bindings == 1

    def test_symmetric_mapping_differs_per_destination(self):
        nat = NatBox("2.0.0.1", profile=NatProfile.symmetric())
        first = nat.translate_outbound(INTERNAL, REMOTE_A, now=0.0)
        second = nat.translate_outbound(INTERNAL, REMOTE_B, now=0.0)
        assert first.port != second.port
        assert nat.active_bindings == 2

    def test_mapping_tracks_contacted_destinations(self):
        nat = NatBox("2.0.0.1")
        nat.translate_outbound(INTERNAL, REMOTE_A, now=0.0)
        assert nat.has_mapping_to(INTERNAL, REMOTE_A)
        assert not nat.has_mapping_to(INTERNAL, REMOTE_B)


class TestInboundFiltering:
    def test_no_binding_blocks_everything(self):
        nat = NatBox("2.0.0.1")
        assert nat.accept_inbound(REMOTE_A, Endpoint("2.0.0.1", 7000), now=0.0) is None

    def test_endpoint_independent_accepts_anyone(self):
        nat = NatBox("2.0.0.1", profile=NatProfile.full_cone())
        nat.translate_outbound(INTERNAL, REMOTE_A, now=0.0)
        assert nat.accept_inbound(REMOTE_B, Endpoint("2.0.0.1", 7000), now=1.0) == INTERNAL

    def test_address_dependent_requires_contacted_ip(self):
        nat = NatBox("2.0.0.1", profile=NatProfile.restricted_cone())
        nat.translate_outbound(INTERNAL, REMOTE_A, now=0.0)
        assert nat.accept_inbound(REMOTE_A_OTHER_PORT, Endpoint("2.0.0.1", 7000), 1.0) == INTERNAL
        assert nat.accept_inbound(REMOTE_B, Endpoint("2.0.0.1", 7000), 1.0) is None

    def test_port_dependent_requires_exact_endpoint(self):
        nat = NatBox("2.0.0.1", profile=NatProfile.port_restricted_cone())
        nat.translate_outbound(INTERNAL, REMOTE_A, now=0.0)
        assert nat.accept_inbound(REMOTE_A, Endpoint("2.0.0.1", 7000), 1.0) == INTERNAL
        assert nat.accept_inbound(REMOTE_A_OTHER_PORT, Endpoint("2.0.0.1", 7000), 1.0) is None


class TestMappingExpiry:
    def test_binding_expires_after_timeout(self):
        nat = NatBox("2.0.0.1", profile=NatProfile(mapping_timeout_ms=1000.0))
        nat.translate_outbound(INTERNAL, REMOTE_A, now=0.0)
        assert nat.accept_inbound(REMOTE_A, Endpoint("2.0.0.1", 7000), now=500.0) == INTERNAL
        assert nat.accept_inbound(REMOTE_A, Endpoint("2.0.0.1", 7000), now=2000.0) is None

    def test_outbound_traffic_refreshes_binding(self):
        nat = NatBox("2.0.0.1", profile=NatProfile(mapping_timeout_ms=1000.0))
        nat.translate_outbound(INTERNAL, REMOTE_A, now=0.0)
        nat.translate_outbound(INTERNAL, REMOTE_A, now=900.0)
        assert nat.accept_inbound(REMOTE_A, Endpoint("2.0.0.1", 7000), now=1800.0) == INTERNAL

    def test_expired_port_is_released(self):
        nat = NatBox("2.0.0.1", profile=NatProfile(mapping_timeout_ms=1000.0))
        nat.translate_outbound(INTERNAL, REMOTE_A, now=0.0)
        assert nat.active_bindings == 1
        nat.translate_outbound(Endpoint("10.0.0.2", 8000), REMOTE_A, now=5000.0)
        assert nat.active_bindings == 1  # the first one expired and was removed


class TestUpnp:
    def test_permanent_mapping_accepts_unsolicited(self):
        nat = UpnpNatBox("2.0.0.1", profile=NatProfile.port_restricted_cone())
        external = nat.add_port_mapping(INTERNAL, external_port=7000)
        assert external == Endpoint("2.0.0.1", 7000)
        assert nat.accept_inbound(REMOTE_B, external, now=0.0) == INTERNAL

    def test_permanent_mapping_never_expires(self):
        nat = UpnpNatBox("2.0.0.1", profile=NatProfile(mapping_timeout_ms=100.0))
        external = nat.add_port_mapping(INTERNAL)
        assert nat.accept_inbound(REMOTE_A, external, now=10_000_000.0) == INTERNAL

    def test_conflicting_mapping_rejected(self):
        nat = UpnpNatBox("2.0.0.1")
        nat.add_port_mapping(INTERNAL, external_port=7000)
        with pytest.raises(NatError):
            nat.add_port_mapping(Endpoint("10.0.0.2", 7000), external_port=7000)

    def test_remove_port_mapping(self):
        nat = UpnpNatBox("2.0.0.1")
        external = nat.add_port_mapping(INTERNAL, external_port=7000)
        nat.remove_port_mapping(external.port)
        assert nat.accept_inbound(REMOTE_A, external, now=0.0) is None

    def test_supports_flag(self):
        assert UpnpNatBox("2.0.0.1").supports_upnp_igd


class TestFirewall:
    def test_no_translation_on_outbound(self):
        firewall = FirewallBox("9.0.0.1")
        wire = firewall.translate_outbound(Endpoint("9.0.0.1", 7000), REMOTE_A, now=0.0)
        assert wire == Endpoint("9.0.0.1", 7000)

    def test_unsolicited_inbound_blocked(self):
        firewall = FirewallBox("9.0.0.1")
        assert firewall.accept_inbound(REMOTE_A, Endpoint("9.0.0.1", 7000), now=0.0) is None

    def test_reply_on_open_flow_allowed(self):
        firewall = FirewallBox("9.0.0.1")
        firewall.translate_outbound(Endpoint("9.0.0.1", 7000), REMOTE_A, now=0.0)
        accepted = firewall.accept_inbound(REMOTE_A, Endpoint("9.0.0.1", 7000), now=1.0)
        assert accepted == Endpoint("9.0.0.1", 7000)


class TestPortAllocator:
    def test_preservation_uses_preferred_port(self):
        allocator = PortAllocator(AllocationPolicy.PORT_PRESERVATION)
        assert allocator.allocate(preferred_port=7000) == 7000

    def test_preservation_falls_back_on_collision(self):
        allocator = PortAllocator(AllocationPolicy.PORT_PRESERVATION)
        first = allocator.allocate(preferred_port=7000)
        second = allocator.allocate(preferred_port=7000)
        assert first == 7000
        assert second != 7000

    def test_sequential_allocates_unique_ports(self):
        allocator = PortAllocator(AllocationPolicy.SEQUENTIAL)
        ports = {allocator.allocate() for _ in range(100)}
        assert len(ports) == 100

    def test_random_allocates_unique_ports(self):
        allocator = PortAllocator(AllocationPolicy.RANDOM)
        ports = {allocator.allocate() for _ in range(100)}
        assert len(ports) == 100

    def test_release_returns_port_to_pool(self):
        allocator = PortAllocator(AllocationPolicy.PORT_PRESERVATION)
        allocator.allocate(preferred_port=7000)
        allocator.release(7000)
        assert allocator.allocate(preferred_port=7000) == 7000

    def test_in_use_counter(self):
        allocator = PortAllocator()
        allocator.allocate(preferred_port=1)
        allocator.allocate(preferred_port=2)
        assert allocator.in_use == 2


class TestNatBoxHosts:
    def test_attach_and_detach_host(self, sim, network, hosts):
        host = hosts.private_host()
        nat = host.natbox
        assert nat.attached_hosts == 1
        assert nat.host_for(host.local_endpoint) is host
        nat.detach_host(host)
        assert nat.attached_hosts == 0

    def test_attach_conflicting_internal_ip_rejected(self, sim, network, hosts):
        host = hosts.private_host()
        nat = host.natbox

        class FakeHost:
            local_endpoint = host.local_endpoint

        with pytest.raises(NatError):
            nat.attach_host(FakeHost())
