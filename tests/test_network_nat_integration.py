"""Integration tests: datagram delivery through the network with NAT interposition."""

from dataclasses import dataclass

import pytest

from repro.nat.types import NatProfile
from repro.simulator.component import Component
from repro.simulator.latency import ConstantLatency
from repro.simulator.loss import BernoulliLoss
from repro.simulator.message import Message, Packet
from repro.simulator.monitor import TrafficMonitor
from repro.simulator.network import Network


@dataclass
class Probe(Message):
    tag: str = ""

    def payload_size(self) -> int:
        return len(self.tag)


@dataclass
class ProbeReply(Message):
    tag: str = ""

    def payload_size(self) -> int:
        return len(self.tag)


class ProbeComponent(Component):
    def __init__(self, host, port=7000):
        super().__init__(host, port, name="Probe")
        self.received = []
        self.replies = []
        self.subscribe(Probe, self._on_probe)
        self.subscribe(ProbeReply, self._on_reply)

    def _on_probe(self, packet: Packet) -> None:
        self.received.append(packet)
        self.send(packet.source, ProbeReply(tag=packet.message.tag))

    def _on_reply(self, packet: Packet) -> None:
        self.replies.append(packet)


class TestPublicToPublic:
    def test_delivery_and_latency(self, sim, hosts):
        a = ProbeComponent(hosts.public_host())
        b = ProbeComponent(hosts.public_host())
        a.start(), b.start()
        a.send(b.self_endpoint, Probe(tag="hello"))
        sim.run()
        assert len(b.received) == 1
        # ConstantLatency(10) each way.
        assert sim.now == pytest.approx(20.0)
        assert len(a.replies) == 1

    def test_source_endpoint_is_senders(self, sim, hosts):
        a = ProbeComponent(hosts.public_host())
        b = ProbeComponent(hosts.public_host())
        a.start(), b.start()
        a.send(b.self_endpoint, Probe())
        sim.run()
        assert b.received[0].source == a.self_endpoint

    def test_unknown_destination_dropped(self, sim, hosts, monitor):
        a = ProbeComponent(hosts.public_host())
        a.start()
        from repro.net.address import Endpoint

        a.send(Endpoint("1.255.255.1", 7000), Probe())
        sim.run()
        assert monitor.drop_count("unknown_destination") == 1


class TestPrivateTraversal:
    def test_unsolicited_to_private_is_filtered(self, sim, hosts, monitor):
        public = ProbeComponent(hosts.public_host())
        private = ProbeComponent(hosts.private_host())
        public.start(), private.start()
        public.send(private.self_endpoint, Probe(tag="unsolicited"))
        sim.run()
        assert private.received == []
        assert monitor.drop_count("nat_filtered") == 1

    def test_reply_traverses_nat_after_outbound(self, sim, hosts):
        public = ProbeComponent(hosts.public_host())
        private = ProbeComponent(hosts.private_host())
        public.start(), private.start()
        private.send(public.self_endpoint, Probe(tag="ping"))
        sim.run()
        assert len(public.received) == 1
        # The reply goes back through the NAT to the private node.
        assert len(private.replies) == 1

    def test_observed_source_is_nat_external_endpoint(self, sim, hosts):
        public = ProbeComponent(hosts.public_host())
        private_host = hosts.private_host()
        private = ProbeComponent(private_host)
        public.start(), private.start()
        private.send(public.self_endpoint, Probe())
        sim.run()
        observed = public.received[0].source
        assert observed.ip == private_host.natbox.external_ip
        assert observed.ip != private_host.local_endpoint.ip

    def test_third_party_blocked_by_restricted_cone(self, sim, hosts, monitor):
        """After the private node talks to A, packets from B are still filtered."""
        a = ProbeComponent(hosts.public_host())
        b = ProbeComponent(hosts.public_host())
        private = ProbeComponent(hosts.private_host(profile=NatProfile.restricted_cone()))
        for c in (a, b, private):
            c.start()
        private.send(a.self_endpoint, Probe())
        sim.run()
        before = monitor.drop_count("nat_filtered")
        b.send(private.self_endpoint, Probe(tag="third-party"))
        sim.run()
        assert monitor.drop_count("nat_filtered") == before + 1
        assert len(private.received) == 0

    def test_third_party_allowed_by_full_cone(self, sim, hosts):
        a = ProbeComponent(hosts.public_host())
        b = ProbeComponent(hosts.public_host())
        private = ProbeComponent(hosts.private_host(profile=NatProfile.full_cone()))
        for c in (a, b, private):
            c.start()
        private.send(a.self_endpoint, Probe())
        sim.run()
        b.send(private.self_endpoint, Probe(tag="third-party"))
        sim.run()
        assert len(private.received) == 1

    def test_private_to_private_via_prior_contact(self, sim, hosts):
        """If B previously contacted A's NAT, A can reach B directly (hole punching)."""
        a_host = hosts.private_host(profile=NatProfile.restricted_cone())
        b_host = hosts.private_host(profile=NatProfile.restricted_cone())
        a = ProbeComponent(a_host)
        b = ProbeComponent(b_host)
        a.start(), b.start()
        # B sends to A's external endpoint first (dropped at A's NAT, but it opens
        # B's own mapping towards A's NAT address).
        b.send(a.self_endpoint, Probe(tag="punch"))
        sim.run()
        assert a.received == []
        # Now A sends to B: B's NAT has contacted A's NAT IP, so it is accepted.
        a.send(b.self_endpoint, Probe(tag="direct"))
        sim.run()
        assert len(b.received) == 1

    def test_mapping_timeout_closes_the_path(self, sim, hosts):
        profile = NatProfile.restricted_cone(mapping_timeout_ms=1_000.0)
        public = ProbeComponent(hosts.public_host())
        private = ProbeComponent(hosts.private_host(profile=profile))
        public.start(), private.start()
        private.send(public.self_endpoint, Probe())
        sim.run()
        assert len(private.replies) == 1
        # Wait beyond the mapping timeout, then try to reach the private node again.
        sim.run(until=sim.now + 5_000.0)
        public.send(private.self_endpoint, Probe(tag="late"))
        sim.run()
        assert len(private.received) == 0


class RecordingLatency(ConstantLatency):
    """Constant latency that records the (src, dst) integer endpoint keys it is asked for."""

    def __init__(self, delay_ms: float = 10.0):
        super().__init__(delay_ms)
        self.pairs = []

    def latency(self, src_id: int, dst_id: int) -> float:
        self.pairs.append((src_id, dst_id))
        return self.delay_ms


class TestCachedEndpointRouting:
    """The pre-parsed IP cache must not change what the latency model observes.

    ``Network.send`` no longer parses address strings per packet; it resolves both
    endpoints through a cache warmed at host registration. These tests pin down the
    wire semantics: NAT-translated packets still resolve latency from the NAT's
    *external* IP, and registration/unregistration/churn keep routing correct.
    """

    @staticmethod
    def _build(sim):
        from tests.conftest import HostFactory

        latency = RecordingLatency(10.0)
        network = Network(sim, latency_model=latency, monitor=TrafficMonitor())
        return latency, network, HostFactory(sim, network)

    def test_registration_prewarms_the_parse_cache(self, sim):
        from repro.net.address import _PARSE_CACHE, parse_ipv4

        _, network, factory = self._build(sim)
        public = factory.public_host()
        private = factory.private_host()
        # Registration resolves both routable IPs through the memoised parser, so
        # the first packet's latency lookup is a dict hit, not a string parse.
        assert _PARSE_CACHE[public.address.endpoint.ip] == parse_ipv4(
            public.address.endpoint.ip
        )
        assert _PARSE_CACHE[private.natbox.external_ip] == parse_ipv4(
            private.natbox.external_ip
        )

    def test_nat_translated_packet_uses_external_ip_for_latency(self, sim):
        from repro.net.address import parse_ipv4

        latency, _, factory = self._build(sim)
        public = ProbeComponent(factory.public_host())
        private_host = factory.private_host()
        private = ProbeComponent(private_host)
        public.start(), private.start()
        private.send(public.self_endpoint, Probe(tag="out"))
        sim.run()
        external = parse_ipv4(private_host.natbox.external_ip)
        internal = parse_ipv4(private_host.local_endpoint.ip)
        target = parse_ipv4(public.address.endpoint.ip)
        # Outbound: latency keyed on the NAT's external IP, never the private one.
        assert latency.pairs[0] == (external, target)
        assert all(internal not in pair for pair in latency.pairs)
        # The reply is keyed back towards the NAT's external IP.
        assert latency.pairs[1] == (target, external)
        assert len(private.replies) == 1

    def test_unregistered_host_stops_routing_despite_cached_parse(self, sim):
        _, network, factory = self._build(sim)
        a = ProbeComponent(factory.public_host())
        b = ProbeComponent(factory.public_host())
        a.start(), b.start()
        b_endpoint = b.self_endpoint
        b.host.kill()  # unregisters from the network; the pure parse cache may remain
        a.send(b_endpoint, Probe(tag="late"))
        sim.run()
        assert b.received == []
        assert network.monitor.drop_count("unknown_destination") == 1

    def test_churned_private_node_routes_correctly_after_rejoin(self, sim):
        """Kill a private node, attach a fresh one behind the same NAT box: the cached
        endpoint keys must keep resolving latency from the (unchanged) external IP."""
        from repro.net.address import parse_ipv4

        latency, _, factory = self._build(sim)
        public = ProbeComponent(factory.public_host())
        first_host = factory.private_host()
        first = ProbeComponent(first_host)
        public.start(), first.start()
        first.send(public.self_endpoint, Probe(tag="first"))
        sim.run()
        assert len(public.received) == 1

        first_host.kill()
        from repro.net.address import Endpoint, NatType, NodeAddress
        from repro.simulator.host import Host

        rejoined_address = NodeAddress(
            node_id=first_host.node_id + 100_000,
            endpoint=Endpoint(first_host.natbox.external_ip, 7000),
            nat_type=NatType.PRIVATE,
            private_endpoint=Endpoint("10.9.9.9", 7000),
        )
        rejoined = ProbeComponent(
            Host(sim, public.host.network, rejoined_address, natbox=first_host.natbox)
        )
        rejoined.start()
        latency.pairs.clear()
        rejoined.send(public.self_endpoint, Probe(tag="rejoined"))
        sim.run()
        assert len(public.received) == 2
        external = parse_ipv4(first_host.natbox.external_ip)
        assert latency.pairs[0][0] == external
        assert len(rejoined.replies) == 1

    def test_send_to_unseen_destination_fills_cache_on_demand(self, sim):
        from repro.net.address import _PARSE_CACHE, Endpoint, parse_ipv4

        _, network, factory = self._build(sim)
        a = ProbeComponent(factory.public_host())
        a.start()
        unknown = Endpoint("9.9.9.9", 7000)
        a.send(unknown, Probe(tag="void"))
        sim.run()
        # Never registered, so the packet is dropped — but the latency lookup that
        # preceded the drop cached the parsed endpoint on demand.
        assert _PARSE_CACHE["9.9.9.9"] == parse_ipv4("9.9.9.9")
        assert network.monitor.drop_count("unknown_destination") == 1


class TestLossAndAccounting:
    def test_full_loss_blocks_delivery(self, sim):
        monitor = TrafficMonitor()
        network = Network(
            sim, latency_model=ConstantLatency(5.0), loss_model=BernoulliLoss(1.0), monitor=monitor
        )
        from tests.conftest import HostFactory

        factory = HostFactory(sim, network)
        a = ProbeComponent(factory.public_host())
        b = ProbeComponent(factory.public_host())
        a.start(), b.start()
        a.send(b.self_endpoint, Probe())
        sim.run()
        assert b.received == []
        assert monitor.drop_count("link_loss") == 1

    def test_monitor_counts_bytes_both_sides(self, sim, hosts, monitor):
        a = ProbeComponent(hosts.public_host())
        b = ProbeComponent(hosts.public_host())
        a.start(), b.start()
        a.send(b.self_endpoint, Probe(tag="xyz"))
        sim.run()
        a_traffic = monitor.node_traffic(a.address.node_id)
        b_traffic = monitor.node_traffic(b.address.node_id)
        probe_size = Probe(tag="xyz").wire_size
        reply_size = ProbeReply(tag="xyz").wire_size
        assert a_traffic.tx_bytes == probe_size
        assert a_traffic.rx_bytes == reply_size
        assert b_traffic.rx_bytes == probe_size
        assert b_traffic.tx_bytes == reply_size

    def test_dead_host_drops_packets(self, sim, hosts, monitor):
        a = ProbeComponent(hosts.public_host())
        b = ProbeComponent(hosts.public_host())
        a.start(), b.start()
        b.host.kill()
        a.send(b.self_endpoint, Probe())
        sim.run()
        assert monitor.drop_count() >= 1
        assert b.received == []

    def test_network_packet_counters(self, sim, hosts):
        a = ProbeComponent(hosts.public_host())
        b = ProbeComponent(hosts.public_host())
        a.start(), b.start()
        a.send(b.self_endpoint, Probe())
        sim.run()
        assert a.host.network.packets_sent == 2  # probe + reply
        assert a.host.network.packets_delivered == 2
