"""Unit tests for Algorithm 3's generateRandomSample."""

import random

import pytest

from repro.core.sampling import generate_random_sample
from repro.membership.view import PartialView
from tests.test_descriptor_view import make_descriptor


def make_views(n_public=5, n_private=5):
    public_view = PartialView(max(1, n_public))
    private_view = PartialView(max(1, n_private))
    for node_id in range(1, n_public + 1):
        public_view.add(make_descriptor(node_id, public=True))
    for node_id in range(100, 100 + n_private):
        private_view.add(make_descriptor(node_id, public=False))
    return public_view, private_view


class TestGenerateRandomSample:
    def test_both_views_empty_returns_none(self):
        public_view, private_view = PartialView(3), PartialView(3)
        assert generate_random_sample(public_view, private_view, 0.5, random.Random(0)) is None

    def test_ratio_one_always_samples_public(self):
        public_view, private_view = make_views()
        rng = random.Random(1)
        for _ in range(50):
            sample = generate_random_sample(public_view, private_view, 1.0, rng)
            assert sample.is_public

    def test_ratio_zero_always_samples_private(self):
        public_view, private_view = make_views()
        rng = random.Random(1)
        for _ in range(50):
            sample = generate_random_sample(public_view, private_view, 0.0, rng)
            assert sample.is_private

    def test_sample_frequency_matches_ratio(self):
        public_view, private_view = make_views()
        rng = random.Random(7)
        draws = 4000
        public_draws = sum(
            generate_random_sample(public_view, private_view, 0.2, rng).is_public
            for _ in range(draws)
        )
        assert 0.17 < public_draws / draws < 0.23

    def test_none_ratio_falls_back_to_union(self):
        public_view, private_view = make_views(n_public=1, n_private=1)
        rng = random.Random(3)
        kinds = {
            generate_random_sample(public_view, private_view, None, rng).is_public
            for _ in range(100)
        }
        assert kinds == {True, False}

    def test_falls_back_to_other_view_when_chosen_view_empty(self):
        public_view, private_view = make_views(n_public=3, n_private=0)
        rng = random.Random(5)
        # ratio 0 would pick the (empty) private view; the sampler must fall back.
        sample = generate_random_sample(public_view, private_view, 0.0, rng)
        assert sample is not None and sample.is_public

    def test_out_of_range_ratio_is_clamped(self):
        public_view, private_view = make_views()
        rng = random.Random(5)
        assert generate_random_sample(public_view, private_view, 7.5, rng).is_public
        assert generate_random_sample(public_view, private_view, -3.0, rng).is_private

    def test_samples_come_from_views(self):
        public_view, private_view = make_views()
        member_ids = set(public_view.node_ids()) | set(private_view.node_ids())
        rng = random.Random(11)
        for _ in range(100):
            sample = generate_random_sample(public_view, private_view, 0.5, rng)
            assert sample.node_id in member_ids

    def test_uniformity_within_public_view(self):
        public_view, private_view = make_views(n_public=5, n_private=0)
        rng = random.Random(13)
        counts = {}
        for _ in range(5000):
            sample = generate_random_sample(public_view, private_view, 1.0, rng)
            counts[sample.node_id] = counts.get(sample.node_id, 0) + 1
        values = list(counts.values())
        assert len(values) == 5
        assert max(values) < 1.3 * min(values)
