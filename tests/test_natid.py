"""Tests for the distributed NAT-type identification protocol (Algorithm 1)."""

import pytest

from repro.nat.firewall import FirewallBox
from repro.nat.types import NatProfile
from repro.nat.upnp import UpnpNatBox
from repro.natid.protocol import (
    NatIdentificationClient,
    NatIdentificationServer,
)
from repro.net.address import Endpoint, NatType, NodeAddress
from repro.simulator.host import Host


def _install_servers(hosts, count=4):
    """Create ``count`` public hosts each running the NAT-id server."""
    servers = []
    addresses = []
    for _ in range(count):
        host = hosts.public_host()
        addresses.append(host.address)
        server = NatIdentificationServer(host, public_node_provider=lambda: addresses)
        server.start()
        servers.append(server)
    return servers, addresses


class TestClassification:
    def test_public_node_identified_as_public(self, sim, hosts):
        servers, addresses = _install_servers(hosts)
        client_host = hosts.public_host()
        client = NatIdentificationClient(client_host)
        client.identify(addresses[:2])
        sim.run()
        assert client.result is not None
        assert client.result.nat_type is NatType.PUBLIC
        assert client.result.reason == "matching_ip"

    def test_restricted_cone_private_via_timeout(self, sim, hosts):
        """Address-dependent filtering blocks the ForwardResp → timeout → private."""
        servers, addresses = _install_servers(hosts)
        client_host = hosts.private_host(profile=NatProfile.restricted_cone())
        client = NatIdentificationClient(client_host)
        client.identify(addresses[:2])
        sim.run()
        assert client.result.nat_type is NatType.PRIVATE
        assert client.result.reason == "timeout"

    def test_full_cone_private_via_ip_mismatch(self, sim, hosts):
        """An EI-filtering NAT lets the ForwardResp through, but the IPs differ."""
        servers, addresses = _install_servers(hosts)
        client_host = hosts.private_host(profile=NatProfile.full_cone())
        client = NatIdentificationClient(client_host)
        client.identify(addresses[:2])
        sim.run()
        assert client.result.nat_type is NatType.PRIVATE
        assert client.result.reason == "ip_mismatch"
        assert client.result.observed_ip == client_host.natbox.external_ip

    def test_firewalled_node_is_private(self, sim, hosts, network):
        servers, addresses = _install_servers(hosts)
        firewall = FirewallBox("9.0.0.1")
        address = NodeAddress(
            node_id=7777,
            endpoint=Endpoint("9.0.0.1", 7000),
            nat_type=NatType.PRIVATE,
            private_endpoint=Endpoint("9.0.0.1", 7000),
        )
        host = Host(sim, network, address, natbox=firewall)
        client = NatIdentificationClient(host)
        client.identify(addresses[:2])
        sim.run()
        assert client.result.nat_type is NatType.PRIVATE
        assert client.result.reason == "timeout"

    def test_upnp_node_is_public_without_messages(self, sim, hosts, monitor):
        servers, addresses = _install_servers(hosts)
        client_host = hosts.private_host()
        client = NatIdentificationClient(client_host, supports_upnp_igd=True)
        client.identify(addresses[:2])
        assert client.result.nat_type is NatType.PUBLIC
        assert client.result.reason == "upnp_igd"
        # The UPnP path finishes instantly, before any packet is sent.
        assert monitor.node_traffic(client_host.node_id).tx_messages == 0

    def test_no_public_nodes_conservatively_private(self, sim, hosts):
        client_host = hosts.public_host()
        client = NatIdentificationClient(client_host)
        client.identify([])
        assert client.result.nat_type is NatType.PRIVATE
        assert client.result.reason == "no_public_nodes"


class TestProtocolMechanics:
    def test_three_messages_per_single_instance(self, sim, hosts, monitor):
        """One MatchingIpTest, one ForwardTest, one ForwardResp (Algorithm 1)."""
        servers, addresses = _install_servers(hosts, count=3)
        client_host = hosts.public_host()
        client = NatIdentificationClient(client_host)
        client.identify(addresses[:1])  # single parallel instance
        sim.run()
        total_messages = sum(
            monitor.node_traffic(a.node_id).tx_messages for a in addresses
        ) + monitor.node_traffic(client_host.node_id).tx_messages
        assert total_messages == 3

    def test_second_public_node_not_in_bootstrap_set(self, sim, hosts):
        """The ForwardTest must go to a node outside the client's bootstrap list."""
        servers, addresses = _install_servers(hosts, count=4)
        client_host = hosts.public_host()
        client = NatIdentificationClient(client_host)
        bootstrap = addresses[:2]
        client.identify(bootstrap)
        sim.run()
        bootstrap_ids = {a.node_id for a in bootstrap}
        forwarders = [s for s in servers if s.forward_resps_sent > 0]
        assert forwarders, "someone must have sent the ForwardResp"
        assert all(s.address.node_id not in bootstrap_ids for s in forwarders)

    def test_callback_invoked_once(self, sim, hosts):
        servers, addresses = _install_servers(hosts)
        client_host = hosts.public_host()
        client = NatIdentificationClient(client_host)
        results = []
        client.identify(addresses[:3], callback=results.append)
        sim.run()
        assert len(results) == 1
        assert results[0].is_public

    def test_result_elapsed_time_positive(self, sim, hosts):
        servers, addresses = _install_servers(hosts)
        client_host = hosts.public_host()
        client = NatIdentificationClient(client_host)
        client.identify(addresses[:2])
        sim.run()
        assert client.result.elapsed_ms > 0

    def test_invalid_timeout_rejected(self, sim, hosts):
        from repro.errors import ProtocolError

        with pytest.raises(ProtocolError):
            NatIdentificationClient(hosts.public_host(), timeout_ms=0)

    def test_timeout_length_respected(self, sim, hosts):
        """Without servers the private verdict arrives exactly at the timeout."""
        client_host = hosts.private_host()
        client = NatIdentificationClient(client_host, timeout_ms=2_500.0)
        # Hand the client a bootstrap address that does not answer (no server bound).
        silent = hosts.public_host()
        client.identify([silent.address])
        sim.run()
        assert client.result.reason == "timeout"
        assert client.result.elapsed_ms == pytest.approx(2_500.0)
