"""Unit tests for the latency and loss models."""

import random
import statistics

import pytest

from repro.errors import ConfigurationError
from repro.net.address import Endpoint, NatType, NodeAddress
from repro.simulator.latency import ConstantLatency, KingLatencyModel, UniformLatency
from repro.simulator.loss import BernoulliLoss, BiasedLoss, NoLoss


class TestConstantLatency:
    def test_constant(self):
        model = ConstantLatency(33.0)
        assert model.latency(1, 2) == 33.0
        assert model.latency(99, 1) == 33.0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            ConstantLatency(-1.0)


class TestUniformLatency:
    def test_within_bounds_and_deterministic(self):
        model = UniformLatency(10.0, 20.0, seed=3)
        values = [model.latency(a, b) for a in range(5) for b in range(5)]
        assert all(10.0 <= v <= 20.0 for v in values)
        again = UniformLatency(10.0, 20.0, seed=3)
        assert [again.latency(a, b) for a in range(5) for b in range(5)] == values

    def test_symmetric(self):
        model = UniformLatency(10.0, 20.0, seed=3)
        assert model.latency(3, 9) == model.latency(9, 3)

    def test_rejects_bad_range(self):
        with pytest.raises(ConfigurationError):
            UniformLatency(50.0, 10.0)


class TestKingLatencyModel:
    def test_deterministic_and_symmetric(self):
        model = KingLatencyModel(seed=11)
        assert model.latency(5, 9) == model.latency(9, 5)
        other = KingLatencyModel(seed=11)
        assert other.latency(5, 9) == pytest.approx(model.latency(5, 9))

    def test_positive_and_above_base(self):
        model = KingLatencyModel(seed=2)
        for a in range(10):
            for b in range(a + 1, 10):
                assert model.latency(a, b) >= KingLatencyModel.BASE_DELAY_MS

    def test_distribution_shape(self):
        """Median of tens of milliseconds and a long right tail, like the King data."""
        model = KingLatencyModel(seed=5)
        samples = [model.latency(a, b) for a in range(40) for b in range(a + 1, 40)]
        median = statistics.median(samples)
        assert 30.0 <= median <= 200.0
        assert max(samples) > median * 1.5

    def test_cache_returns_same_object_value(self):
        model = KingLatencyModel(seed=5)
        first = model.latency(1, 2)
        assert model.latency(1, 2) == first

    def test_describe_mentions_model(self):
        assert "King" in KingLatencyModel(seed=1).describe()


def _addr(public: bool) -> NodeAddress:
    if public:
        return NodeAddress(1, Endpoint("1.0.0.1", 7000), NatType.PUBLIC)
    return NodeAddress(
        2, Endpoint("2.0.0.1", 7000), NatType.PRIVATE, private_endpoint=Endpoint("10.0.0.1", 7000)
    )


class TestLossModels:
    def test_no_loss_never_drops(self):
        rng = random.Random(0)
        model = NoLoss()
        assert not any(model.should_drop(rng, _addr(True), "1.0.0.2") for _ in range(100))

    def test_bernoulli_zero_and_one(self):
        rng = random.Random(0)
        assert not any(BernoulliLoss(0.0).should_drop(rng, None, "1.0.0.2") for _ in range(50))
        assert all(BernoulliLoss(1.0).should_drop(rng, None, "1.0.0.2") for _ in range(50))

    def test_bernoulli_rate_roughly_respected(self):
        rng = random.Random(42)
        model = BernoulliLoss(0.3)
        drops = sum(model.should_drop(rng, None, "1.0.0.2") for _ in range(5000))
        assert 0.25 < drops / 5000 < 0.35

    def test_bernoulli_rejects_bad_probability(self):
        with pytest.raises(ConfigurationError):
            BernoulliLoss(1.5)

    def test_biased_loss_discriminates_by_sender_class(self):
        rng = random.Random(1)
        model = BiasedLoss(public_probability=0.0, private_probability=1.0)
        assert not model.should_drop(rng, _addr(True), "1.0.0.2")
        assert model.should_drop(rng, _addr(False), "1.0.0.2")

    def test_biased_loss_validation(self):
        with pytest.raises(ConfigurationError):
            BiasedLoss(public_probability=-0.1, private_probability=0.5)
