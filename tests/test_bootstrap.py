"""Tests for the bootstrap registry, server and client."""

import pytest

from repro.bootstrap.registry import BootstrapRegistry
from repro.bootstrap.server import BootstrapClient, BootstrapServer
from repro.net.address import Endpoint, NatType, NodeAddress


def public_address(node_id):
    return NodeAddress(node_id, Endpoint(f"1.0.0.{node_id}", 7000), NatType.PUBLIC)


def private_address(node_id):
    return NodeAddress(
        node_id,
        Endpoint(f"2.0.0.{node_id}", 7000),
        NatType.PRIVATE,
        private_endpoint=Endpoint(f"10.0.0.{node_id}", 7000),
    )


class TestRegistry:
    def test_register_accepts_public_only(self):
        registry = BootstrapRegistry()
        assert registry.register(public_address(1))
        assert not registry.register(private_address(2))
        assert len(registry) == 1
        assert 1 in registry and 2 not in registry

    def test_unregister(self):
        registry = BootstrapRegistry()
        registry.register(public_address(1))
        registry.unregister(1)
        assert len(registry) == 0
        registry.unregister(99)  # unknown ids are ignored

    def test_sample_excludes_requester(self):
        registry = BootstrapRegistry()
        for node_id in range(1, 6):
            registry.register(public_address(node_id))
        sample = registry.sample(10, exclude_id=3)
        assert len(sample) == 4
        assert all(a.node_id != 3 for a in sample)

    def test_sample_bounded_by_count(self):
        registry = BootstrapRegistry()
        for node_id in range(1, 21):
            registry.register(public_address(node_id))
        assert len(registry.sample(5)) == 5

    def test_all_public_snapshot(self):
        registry = BootstrapRegistry()
        registry.register(public_address(1))
        assert [a.node_id for a in registry.all_public()] == [1]


class TestBootstrapMessages:
    def test_request_response_flow(self, sim, hosts):
        server_host = hosts.public_host(port=2000)
        registry = BootstrapRegistry()
        for node_id in range(100, 105):
            registry.register(public_address(node_id))
        server = BootstrapServer(server_host, registry=registry)
        server.start()

        client_host = hosts.public_host()
        client = BootstrapClient(
            client_host, server_endpoint=Endpoint(server_host.address.endpoint.ip, 2000)
        )
        received = []
        client.request(count=3, callback=lambda nodes: received.extend(nodes))
        sim.run()
        assert len(received) == 3
        assert client.last_response is not None
        assert server.requests_served == 1

    def test_public_requester_gets_registered(self, sim, hosts):
        server_host = hosts.public_host(port=2000)
        server = BootstrapServer(server_host)
        server.start()
        client_host = hosts.public_host()
        client = BootstrapClient(
            client_host, server_endpoint=Endpoint(server_host.address.endpoint.ip, 2000)
        )
        client.request()
        sim.run()
        assert client_host.node_id in server.registry

    def test_private_client_receives_response_through_nat(self, sim, hosts):
        server_host = hosts.public_host(port=2000)
        registry = BootstrapRegistry()
        registry.register(public_address(50))
        server = BootstrapServer(server_host, registry=registry)
        server.start()
        client_host = hosts.private_host()
        client = BootstrapClient(
            client_host, server_endpoint=Endpoint(server_host.address.endpoint.ip, 2000)
        )
        received = []
        client.request(count=1, callback=lambda nodes: received.extend(nodes))
        sim.run()
        assert [a.node_id for a in received] == [50]
