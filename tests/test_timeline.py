"""Tests for the declarative workload-timeline API: event validation, canonical JSON
round trips, digests, installation semantics, the matrix ``--timelines`` axis (key
stability, worker parity, reuse correctness) and the ``nat_indegree`` kind."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError, ExperimentError
from repro.experiments.matrix import CellContext, CellSpec, MatrixSpec, run_cell
from repro.experiments.runner import ScenarioReuse, aggregate_json_bytes, run_matrix
from repro.workload import (
    ChurnPhase,
    ChurnProcess,
    FailureSpike,
    JoinBurst,
    LossBurst,
    Partition,
    PoissonJoin,
    RatioGrowth,
    Scenario,
    ScenarioConfig,
    Timeline,
    get_timeline,
    register_timeline,
    timeline_names,
    unregister_timeline,
)


def small_scenario(seed: int = 3, n_public: int = 5, n_private: int = 15) -> Scenario:
    scenario = Scenario(ScenarioConfig(seed=seed, latency="constant"))
    scenario.populate(n_public=n_public, n_private=n_private)
    return scenario


class TestSerialization:
    def test_round_trip_is_byte_identical_for_every_preset(self):
        for name in timeline_names():
            timeline = get_timeline(name)
            text = timeline.to_json()
            parsed = Timeline.from_json(text)
            assert parsed == timeline
            assert parsed.to_json() == text  # parse -> serialize: exact bytes

    def test_canonical_form_and_digest_are_pinned(self):
        # The digest feeds matrix cell keys and therefore derived seeds; a drift
        # would silently re-seed every timeline cell in archived aggregates.
        timeline = get_timeline("paper-churn")
        assert timeline.to_json() == (
            '{"events":[{"fraction_per_round":0.01,"ramp_rounds":0.0,'
            '"start_round":61.0,"stop_round":null,"type":"churn_phase"}],'
            '"schema":"repro-timeline-v1"}'
        )
        assert timeline.digest == "d347e90c1f"

    def test_integer_round_times_serialize_canonically(self):
        # JSON authors write {"at_round": 61}; the parsed event must serialize to
        # the same bytes as one built with 61.0 (floats are coerced on construction).
        text = json.dumps({
            "schema": "repro-timeline-v1",
            "events": [{"type": "failure_spike", "at_round": 61, "fraction": 0.5}],
        })
        parsed = Timeline.from_json(text)
        assert parsed == Timeline((FailureSpike(at_round=61.0, fraction=0.5),))
        assert parsed.to_json() == Timeline.from_json(parsed.to_json()).to_json()

    def test_unknown_schema_and_event_type_rejected(self):
        with pytest.raises(ConfigurationError):
            Timeline.from_json('{"schema": "repro-timeline-v99", "events": []}')
        with pytest.raises(ConfigurationError):
            Timeline.from_json(
                '{"schema": "repro-timeline-v1", "events": [{"type": "meteor"}]}'
            )
        with pytest.raises(ConfigurationError):
            Timeline.from_json(
                '{"schema": "repro-timeline-v1", '
                '"events": [{"type": "churn_phase", "no_such_field": 1}]}'
            )
        with pytest.raises(ConfigurationError):
            Timeline.from_json("not json at all")

    def test_digest_depends_on_content_only(self):
        a = Timeline((ChurnPhase(fraction_per_round=0.01),))
        b = Timeline((ChurnPhase(fraction_per_round=0.01),))
        c = Timeline((ChurnPhase(fraction_per_round=0.02),))
        assert a.digest == b.digest
        assert a.digest != c.digest
        assert len(a.digest) == 10


class TestEventValidation:
    def test_churn_phase_windows(self):
        with pytest.raises(ExperimentError):
            ChurnPhase(fraction_per_round=0.01, start_round=10.0, stop_round=5.0).validate()
        with pytest.raises(ExperimentError):
            ChurnPhase(fraction_per_round=0.01, start_round=10.0, stop_round=10.0).validate()
        with pytest.raises(ExperimentError):
            ChurnPhase(fraction_per_round=1.5).validate()
        with pytest.raises(ExperimentError):
            ChurnPhase(fraction_per_round=0.01, ramp_rounds=-1.0).validate()
        ChurnPhase(fraction_per_round=0.01, start_round=10.0, stop_round=20.0).validate()

    def test_join_burst_needs_exactly_one_size(self):
        with pytest.raises(ExperimentError):
            JoinBurst(at_round=5.0).validate()  # neither count nor fraction
        with pytest.raises(ExperimentError):
            JoinBurst(at_round=5.0, count=10, fraction=0.5).validate()  # both
        JoinBurst(at_round=5.0, count=10).validate()
        JoinBurst(at_round=5.0, fraction=0.5).validate()

    def test_loss_burst_and_partition_windows(self):
        with pytest.raises(ExperimentError):
            LossBurst(start_round=10.0, stop_round=10.0, loss_rate=0.1).validate()
        with pytest.raises(ExperimentError):
            LossBurst(start_round=0.0, stop_round=5.0, loss_rate=1.5).validate()
        with pytest.raises(ExperimentError):
            Partition(start_round=9.0, stop_round=3.0).validate()
        with pytest.raises(ExperimentError):
            FailureSpike(at_round=5.0, fraction=-0.1).validate()

    def test_poisson_join_validation(self):
        with pytest.raises(ExperimentError):
            PoissonJoin(public=True, count=-1, mean_interarrival_ms=10.0).validate()
        with pytest.raises(ExperimentError):
            PoissonJoin(public=True, count=1, mean_interarrival_ms=0.0).validate()
        with pytest.raises(ExperimentError):
            RatioGrowth(count=5, interval_ms=0.0).validate()

    def test_install_validates(self):
        scenario = small_scenario()
        bad = Timeline((ChurnPhase(fraction_per_round=2.0),))
        with pytest.raises(ExperimentError):
            bad.install(scenario)

    def test_integral_counts_coerced_fractional_rejected(self):
        assert PoissonJoin(public=True, count=100.0, mean_interarrival_ms=5.0).count == 100
        assert RatioGrowth(count=3.0).count == 3
        assert JoinBurst(at_round=1.0, count=2.0).count == 2
        with pytest.raises(ExperimentError):
            PoissonJoin(public=True, count=2.5, mean_interarrival_ms=5.0)
        with pytest.raises(ExperimentError):
            RatioGrowth(count="many")

    def test_overlapping_exclusive_windows_rejected(self):
        overlapping_loss = Timeline((
            LossBurst(start_round=10.0, stop_round=30.0, loss_rate=0.2),
            LossBurst(start_round=20.0, stop_round=40.0, loss_rate=0.5),
        ))
        with pytest.raises(ExperimentError):
            overlapping_loss.validate()
        overlapping_partition = Timeline((
            Partition(start_round=5.0, stop_round=15.0),
            Partition(start_round=10.0, stop_round=20.0),
        ))
        with pytest.raises(ExperimentError):
            overlapping_partition.validate()
        # Disjoint windows (even back to back) are fine.
        Timeline((
            LossBurst(start_round=10.0, stop_round=20.0, loss_rate=0.2),
            LossBurst(start_round=20.0, stop_round=30.0, loss_rate=0.5),
        )).validate()


class TestInstallationSemantics:
    def test_zero_fraction_churn_phase_schedules_nothing(self):
        scenario = small_scenario()
        pending_before = scenario.sim.pending_events
        installed = Timeline((ChurnPhase(fraction_per_round=0.0),)).install(scenario)
        assert scenario.sim.pending_events == pending_before
        assert installed.processes == []

    def test_boundary_events_fire_once_in_round_order(self):
        scenario = small_scenario(n_public=6, n_private=14)
        early = FailureSpike(at_round=3.0, fraction=0.25)
        late = FailureSpike(at_round=6.0, fraction=0.5)
        installed = Timeline((late, early)).install(scenario)
        assert [e.at_round for e in installed.pending_boundary] == [3.0, 6.0]
        scenario.run_rounds(3)
        fired = installed.fire_boundary(3)
        assert len(fired) == 1 and installed.outcome_of(early) is fired[0]
        assert installed.fire_boundary(3) == []  # idempotent
        scenario.run_rounds(3)
        installed.fire_boundary(6)
        assert installed.outcome_of(late) is not None
        assert installed.pending_boundary == []

    def test_failure_spike_matches_imperative_call(self):
        from repro.workload import catastrophic_failure

        imperative = small_scenario(seed=11)
        imperative.run_rounds(5)
        outcome_imperative = catastrophic_failure(imperative, 0.5)

        declarative = small_scenario(seed=11)
        spike = FailureSpike(at_round=5.0, fraction=0.5)
        installed = Timeline((spike,)).install(declarative)
        declarative.run_rounds(5)
        installed.fire_boundary(5)
        outcome_declarative = installed.outcome_of(spike)
        assert outcome_declarative.killed_node_ids == outcome_imperative.killed_node_ids
        assert (
            outcome_declarative.biggest_cluster_fraction
            == outcome_imperative.biggest_cluster_fraction
        )

    def test_advance_rounds_fires_boundaries_at_their_declared_round(self):
        # A single 10-round advance must still apply the spike at round 4, then
        # keep gossiping: survivors repair their views for the remaining rounds.
        scenario = small_scenario(seed=13, n_public=6, n_private=14)
        spike = FailureSpike(at_round=4.0, fraction=0.5)
        installed = Timeline((spike,)).install(scenario)
        installed.advance_rounds(10)
        assert scenario.now == pytest.approx(10 * scenario.round_ms)
        outcome = installed.outcome_of(spike)
        assert outcome is not None and outcome.survivors == 10
        assert installed.pending_boundary == []
        # Boundaries beyond the advance stay pending.
        scenario2 = small_scenario(seed=13, n_public=6, n_private=14)
        late = FailureSpike(at_round=20.0, fraction=0.5)
        installed2 = Timeline((late,)).install(scenario2)
        installed2.advance_rounds(10)
        assert installed2.pending_boundary == [late]
        assert scenario2.live_count() == 20

    def test_join_burst_grows_population(self):
        scenario = small_scenario(n_public=4, n_private=12)
        Timeline((JoinBurst(at_round=2.0, fraction=0.5, spread_rounds=1.0),)).install(scenario)
        scenario.run_rounds(5)
        assert scenario.live_count() == 24  # 16 + round(0.5 * 16)

    def test_loss_burst_swaps_and_restores_loss_model(self):
        from repro.simulator.loss import BernoulliLoss, NoLoss

        scenario = small_scenario()
        Timeline((LossBurst(start_round=2.0, stop_round=4.0, loss_rate=0.5),)).install(scenario)
        assert isinstance(scenario.network.loss_model, NoLoss)
        scenario.run_rounds(3)
        assert isinstance(scenario.network.loss_model, BernoulliLoss)
        drops_during = scenario.monitor.drop_count("link_loss")
        assert drops_during > 0
        scenario.run_rounds(3)
        assert isinstance(scenario.network.loss_model, NoLoss)

    def test_partition_splits_then_heals(self):
        scenario = small_scenario(seed=5, n_public=6, n_private=14)
        Timeline((Partition(start_round=2.0, stop_round=5.0, fraction=0.5),)).install(scenario)
        scenario.run_rounds(4)
        assert scenario.network.partition is not None
        assert scenario.monitor.drop_count("partitioned") > 0
        scenario.run_rounds(2)
        assert scenario.network.partition is None

    def test_same_timeline_installs_identically_on_clones(self):
        # The clone/branching contract: a warmed prefix plus a timeline suffix must
        # replay identically on every clone, and never disturb the original.
        warmed = small_scenario(seed=9, n_public=6, n_private=14)
        warmed.run_rounds(10)
        live_before = warmed.live_count()
        pending_before = warmed.sim.pending_events
        suffix = Timeline((FailureSpike(at_round=10.0, fraction=0.6),))

        outcomes = []
        for _ in range(2):
            branch = warmed.clone()
            installed = suffix.install(branch)
            installed.fire_boundary(10)
            outcomes.append(installed.outcomes[0][1])
        assert outcomes[0].killed_node_ids == outcomes[1].killed_node_ids
        assert (
            outcomes[0].biggest_cluster_fraction == outcomes[1].biggest_cluster_fraction
        )
        assert warmed.live_count() == live_before
        assert warmed.sim.pending_events == pending_before


class TestChurnEdgeCases:
    def test_stop_before_start_rejected(self):
        scenario = small_scenario()
        with pytest.raises(ExperimentError):
            ChurnProcess(scenario, fraction_per_round=0.1, start_ms=5_000.0, stop_ms=1_000.0)
        with pytest.raises(ExperimentError):
            ChurnProcess(scenario, fraction_per_round=0.1, start_ms=5_000.0, stop_ms=5_000.0)

    def test_start_mid_round_anchors_tick_grid(self):
        scenario = small_scenario()
        process = ChurnProcess(scenario, fraction_per_round=0.2, start_ms=500.0)
        scenario.run_ms(500.0 + 3 * scenario.round_ms + 1.0)
        # Ticks at 500, 1500, 2500, 3500 — four executions within the window.
        assert process.rounds_executed == 4

    def test_ramp_reaches_full_rate(self):
        scenario = small_scenario()
        process = ChurnProcess(
            scenario, fraction_per_round=0.4, start_ms=0.0, ramp_rounds=4.0
        )
        assert process._effective_fraction() == pytest.approx(0.1)
        process.rounds_executed = 3
        assert process._effective_fraction() == pytest.approx(0.4)
        process.rounds_executed = 10
        assert process._effective_fraction() == pytest.approx(0.4)

    def test_negative_ramp_rejected(self):
        scenario = small_scenario()
        with pytest.raises(ExperimentError):
            ChurnProcess(scenario, fraction_per_round=0.1, ramp_rounds=-2.0)

    def test_kill_random_fraction_on_empty_scenario(self):
        scenario = Scenario(ScenarioConfig(seed=1, latency="constant"))
        assert scenario.kill_random_fraction(0.5) == []
        assert scenario.live_count() == 0


class TestRegistry:
    def test_builtin_presets_registered(self):
        assert {"paper-churn", "paper-failure", "flash-crowd", "diurnal",
                "partition-heal"} <= set(timeline_names())

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_timeline("paper-churn", Timeline())
        with pytest.raises(ConfigurationError):
            get_timeline("no-such-timeline")

    def test_register_and_unregister(self):
        timeline = Timeline((ChurnPhase(fraction_per_round=0.05, start_round=1.0),))
        register_timeline("test-tl", timeline, description="test only")
        try:
            assert get_timeline("test-tl") is timeline
        finally:
            unregister_timeline("test-tl")
        assert "test-tl" not in timeline_names()


class TestMatrixAxis:
    def test_default_timeline_leaves_legacy_keys_unchanged(self):
        cell = CellSpec(scenario="static", protocol="croupier", size=50, seed_index=0,
                        rounds=6)
        assert "timeline" not in cell.key
        assert cell.key == (
            "scenario=static;protocol=croupier;size=50;seed=0;rounds=6;public_ratio=0.2"
        )

    def test_timeline_cells_key_name_and_digest(self):
        cell = CellSpec(scenario="static", protocol="croupier", size=50, seed_index=0,
                        rounds=6, timeline="paper-churn")
        assert cell.key.endswith("timeline=paper-churn@d347e90c1f")
        with pytest.raises(ExperimentError):
            CellSpec(scenario="static", protocol="croupier", size=50, seed_index=0,
                     rounds=6, timeline="no-such").validate()

    def test_axis_expansion_and_spec_section(self):
        spec = MatrixSpec(
            scenarios=("static",), protocols=("croupier",), sizes=(30,), seeds=1,
            rounds=4, latency="constant", root_seed=7,
            timelines=("none", "flash-crowd"),
        )
        cells = spec.validate()
        assert [c.timeline for c in cells] == ["none", "flash-crowd"]
        run = run_matrix(spec, workers=1)
        assert not run.failed
        aggregate = run.aggregate
        assert aggregate["spec"]["timelines"] == ["none", "flash-crowd"]
        timeline_groups = [g for g in aggregate["groups"] if "timeline=flash-crowd@" in g]
        assert timeline_groups

    def test_legacy_spec_section_has_no_timelines_field(self):
        spec = MatrixSpec(scenarios=("static",), protocols=("croupier",), sizes=(30,),
                          seeds=1, rounds=3, latency="constant", root_seed=7)
        run = run_matrix(spec, workers=1)
        assert "timelines" not in run.aggregate["spec"]

    def test_worker_parity_with_timeline_cells(self):
        spec = MatrixSpec(
            scenarios=("static",), protocols=("croupier",), sizes=(30,), seeds=2,
            rounds=6, latency="constant", root_seed=7,
            timelines=("none", "flash-crowd"),
        )
        sequential = run_matrix(spec, workers=1)
        parallel = run_matrix(spec, workers=4)
        assert not sequential.failed and not parallel.failed
        assert aggregate_json_bytes(sequential) == aggregate_json_bytes(parallel)

    def test_reuse_cache_shares_populated_prefix_across_timelines(self):
        # Same derived seed + population recipe, two different timeline suffixes:
        # the second and third builds must come from one cached snapshot and still
        # match a fresh, reuse-free run bit for bit.
        reuse = ScenarioReuse()
        base = dict(scenario="static", protocol="croupier", size=30, seed_index=0,
                    rounds=4)

        def context(timeline, with_reuse):
            cell = CellSpec(timeline=timeline, **base)
            return CellContext(cell=cell, seed=1234, latency="constant",
                               reuse=reuse if with_reuse else None)

        results = {}
        for timeline in ("none", "flash-crowd", "paper-failure"):
            scenario = context(timeline, True).populated_scenario()
            results[timeline] = scenario.live_count()
        assert reuse.snapshot_hits >= 1  # the shared prefix was served from cache
        fresh = context("flash-crowd", False).populated_scenario()
        assert fresh.live_count() == results["flash-crowd"]

    def test_run_cell_with_timeline_changes_results_not_structure(self):
        base = dict(scenario="static", protocol="croupier", size=40, seed_index=0,
                    rounds=8)
        plain = run_cell(CellSpec(**base), root_seed=7, latency="constant")
        crowd = run_cell(CellSpec(timeline="flash-crowd", **base), root_seed=7,
                         latency="constant")
        assert set(plain.scalars) == set(crowd.scalars)
        assert plain.scalars["live_nodes"] == 40.0
        # flash-crowd is authored for a 60-round horizon; on this 8-round cell it
        # compresses (factor 8/60), so the burst fires at round 4 and the 50%
        # extra population is present at measurement time.
        assert crowd.scalars["live_nodes"] == 60.0


class TestCliIntegration:
    def test_dry_run_prints_keys_seeds_digests_and_writes_nothing(self, tmp_path, capsys):
        from repro.cli import main

        out_dir = tmp_path / "mx"
        rc = main([
            "matrix", "--scenarios", "static", "--protocols", "croupier",
            "--sizes", "40", "--seeds", "2", "--rounds", "4",
            "--latency", "constant", "--timelines", "none,paper-churn",
            "--dry-run", "--out", str(out_dir),
        ])
        assert rc == 0
        captured = capsys.readouterr()
        rows = [line.split("\t") for line in captured.out.strip().splitlines()]
        assert len(rows) == 4  # 2 timelines x 2 seeds
        assert all(len(row) == 3 for row in rows)
        assert {row[2] for row in rows} == {"-", "d347e90c1f"}
        assert all(row[1].isdigit() for row in rows)
        assert not out_dir.exists()  # nothing ran, nothing written

    def test_timeline_json_file_axis_value(self, tmp_path, capsys):
        from repro.cli import main
        from repro.workload.timeline import unregister_timeline

        document = Timeline((ChurnPhase(fraction_per_round=0.02, start_round=2.0),))
        path = tmp_path / "my-dynamics.json"
        path.write_text(document.to_json())
        try:
            rc = main([
                "matrix", "--scenarios", "static", "--protocols", "croupier",
                "--sizes", "30", "--seeds", "1", "--rounds", "4",
                "--latency", "constant", "--timelines", str(path),
                "--workers", "1", "--out", str(tmp_path / "mx"),
            ])
        finally:
            unregister_timeline("file:my-dynamics")
        assert rc == 0
        aggregate = json.loads((tmp_path / "mx" / "matrix_aggregate.json").read_text())
        assert aggregate["spec"]["timelines"] == ["file:my-dynamics"]
        (key,) = [k for k in aggregate["cells"]]
        assert f"timeline=file:my-dynamics@{document.digest}" in key


    def test_timeline_file_stem_collision_rejected(self, tmp_path):
        from repro.cli import _resolve_timeline_value
        from repro.workload.timeline import unregister_timeline

        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        first = tmp_path / "a" / "dynamics.json"
        second = tmp_path / "b" / "dynamics.json"
        first.write_text(Timeline((ChurnPhase(fraction_per_round=0.01),)).to_json())
        second.write_text(Timeline((ChurnPhase(fraction_per_round=0.05),)).to_json())
        try:
            assert _resolve_timeline_value(str(first)) == "file:dynamics"
            from repro.errors import ReproError

            with pytest.raises(ReproError):
                _resolve_timeline_value(str(second))
            # Re-resolving the same file is fine (idempotent).
            assert _resolve_timeline_value(str(first)) == "file:dynamics"
        finally:
            unregister_timeline("file:dynamics")


class TestNatInDegreeKind:
    def test_cell_reports_relative_indegrees(self):
        cell = CellSpec(scenario="nat_indegree", protocol="croupier", size=60,
                        seed_index=0, rounds=10)
        payload = run_cell(cell, root_seed=7, latency="constant")
        assert "indeg_mean_public" in payload.scalars
        assert "symmetric_underrepresentation" in payload.scalars
        relative = [n for n in payload.scalars if n.startswith("indeg_rel_")]
        assert relative and all(payload.scalars[n] >= 0.0 for n in relative)
        assert "indeg_rel_public" not in payload.scalars

    def test_explicit_mixture_axis_is_respected(self):
        cell = CellSpec(scenario="nat_indegree", protocol="croupier", size=60,
                        seed_index=0, rounds=8, nat_mixture="uniform")
        payload = run_cell(cell, root_seed=7, latency="constant")
        assert "indeg_mean_public" in payload.scalars

    def test_report_section_renders(self):
        from repro.experiments.report import matrix_markdown_summary

        spec = MatrixSpec(scenarios=("nat_indegree",), protocols=("croupier",),
                          sizes=(60,), seeds=1, rounds=8, latency="constant",
                          root_seed=7)
        run = run_matrix(spec, workers=1)
        assert not run.failed
        summary = matrix_markdown_summary(run.aggregate)
        assert "## NAT-class in-degree (symmetric-NAT underrepresentation)" in summary
        assert "symmetric" in summary

    def test_harness_to_text(self):
        from repro.experiments import run_nat_indegree_experiment

        result = run_nat_indegree_experiment(
            protocols=("croupier",), total_nodes=60, rounds=8, latency="constant"
        )
        text = result.to_text()
        assert "Symmetric-NAT underrepresentation" in text
        relative = result.relative_to_public("croupier")
        assert relative.get("public") == pytest.approx(1.0)


class TestHorizonScaling:
    """Presets authored for a long horizon compress onto shorter cells; absolute
    paper presets never scale (their round numbers ARE the figure)."""

    def test_event_scaled_multiplies_round_fields_only(self):
        wave = ChurnPhase(fraction_per_round=0.02, start_round=20.0,
                          stop_round=50.0, ramp_rounds=10.0)
        half = wave.scaled(0.5)
        assert half.start_round == 10.0
        assert half.stop_round == 25.0
        assert half.ramp_rounds == 5.0
        assert half.fraction_per_round == 0.02  # a rate, not a round

    def test_event_scaled_skips_none_and_rejects_non_positive(self):
        open_ended = ChurnPhase(fraction_per_round=0.01, start_round=61.0)
        assert open_ended.scaled(0.5).stop_round is None
        with pytest.raises(ExperimentError):
            open_ended.scaled(0.0)
        with pytest.raises(ExperimentError):
            open_ended.scaled(-1.0)

    def test_timeline_scaled_identity_at_factor_one(self):
        timeline = get_timeline("diurnal")
        assert timeline.scaled(1.0) is timeline
        compressed = timeline.scaled(0.5)
        assert [e.start_round for e in compressed.events] == [10.0, 35.0]
        assert [e.stop_round for e in compressed.events] == [25.0, 50.0]

    def test_preset_authored_horizons(self):
        from repro.workload.timeline import TIMELINES

        authored = {name: TIMELINES[name].authored_horizon_rounds
                    for name in timeline_names()}
        assert authored["flash-crowd"] == 60.0
        assert authored["diurnal"] == 120.0
        assert authored["partition-heal"] == 60.0
        # Paper presets carry absolute round numbers (t=61 IS Figure 5/7(b)).
        assert authored["paper-churn"] is None
        assert authored["paper-failure"] is None

    def test_timeline_for_horizon_compresses_only_shorter(self):
        from repro.workload.timeline import TIMELINES

        preset = TIMELINES["diurnal"]
        # Horizon >= authored (or unknown): the authored timeline, verbatim.
        assert preset.timeline_for_horizon(120.0) is preset.timeline
        assert preset.timeline_for_horizon(500.0) is preset.timeline
        assert preset.timeline_for_horizon(None) is preset.timeline
        # Shorter horizon: both waves land inside the run, shape preserved.
        at_60 = preset.timeline_for_horizon(60.0)
        assert [e.start_round for e in at_60.events] == [10.0, 35.0]
        assert [e.stop_round for e in at_60.events] == [25.0, 50.0]
        assert [e.ramp_rounds for e in at_60.events] == [5.0, 5.0]

    def test_paper_presets_never_scale(self):
        from repro.workload.timeline import TIMELINES

        preset = TIMELINES["paper-churn"]
        assert preset.timeline_for_horizon(10.0) is preset.timeline
        assert preset.timeline.events[0].start_round == 61.0

    def test_cell_context_installs_scaled_timeline(self):
        cell = CellSpec(scenario="static", protocol="croupier", size=30,
                        seed_index=0, rounds=60, timeline="diurnal")
        ctx = CellContext(cell=cell, seed=99, latency="constant")
        installed = ctx.timeline
        assert [e.start_round for e in installed.events] == [10.0, 35.0]

    def test_cell_key_digest_still_hashes_authored_timeline(self):
        # Scaling is an install-time detail: the digest in the cell key (and so
        # the derived seed) must come from the authored timeline, or shortening
        # a run would silently re-seed every cell.
        authored_digest = get_timeline("diurnal").digest
        cell = CellSpec(scenario="static", protocol="croupier", size=30,
                        seed_index=0, rounds=60, timeline="diurnal")
        assert f"timeline=diurnal@{authored_digest}" in cell.key

    def test_scaled_preset_cell_runs_green(self):
        # The second diurnal wave (authored rounds 70-100) would never fire in a
        # 30-round cell; compression pulls it to rounds 17.5-25.
        cell = CellSpec(scenario="static", protocol="croupier", size=30,
                        seed_index=0, rounds=30, timeline="diurnal")
        payload = run_cell(cell, root_seed=7, latency="constant")
        assert payload.scalars["live_nodes"] == 30.0
