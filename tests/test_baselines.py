"""Tests for the baseline peer-sampling protocols: Cyclon, Nylon, Gozar, ARRG."""

import pytest

from repro.membership.arrg import Arrg, ArrgConfig
from repro.membership.base import PssConfig
from repro.membership.cyclon import Cyclon
from repro.membership.gozar import Gozar, GozarConfig
from repro.membership.nylon import Nylon, NylonConfig
from repro.workload.scenario import Scenario, ScenarioConfig


def quiet(config_cls, **kwargs):
    return config_cls(start_delay_max_ms=0.0, round_jitter_ms=0.0, **kwargs)


class TestCyclon:
    def test_two_nodes_exchange_descriptors(self, sim, hosts):
        a = Cyclon(hosts.public_host(), quiet(PssConfig))
        b = Cyclon(hosts.public_host(), quiet(PssConfig))
        c_address = hosts.public_host().address
        a.initialize_view([b.address, c_address])
        b.initialize_view([a.address])
        a.start(), b.start()
        sim.run(until=3_500)
        assert a.stats.shuffle_responses_received >= 1
        assert b.stats.shuffle_requests_handled >= 1
        # b should have learned about c through a's shuffle subsets eventually
        assert len(b.view) >= 1

    def test_sample_comes_from_view(self, sim, hosts):
        a = Cyclon(hosts.public_host(), quiet(PssConfig))
        seed = hosts.public_host().address
        a.initialize_view([seed])
        assert a.sample() == seed

    def test_empty_view_skips_round(self, sim, hosts):
        a = Cyclon(hosts.public_host(), quiet(PssConfig))
        a.start()
        sim.run(until=2_500)
        assert a.stats.rounds_skipped_empty_view == a.stats.rounds

    def test_cyclon_is_nat_oblivious(self, sim, hosts, monitor):
        """Shuffles aimed at a private node are silently filtered by its NAT."""
        a = Cyclon(hosts.public_host(), quiet(PssConfig))
        private = Cyclon(hosts.private_host(), quiet(PssConfig))
        a.initialize_view([private.address])
        a.start(), private.start()
        sim.run(until=2_500)
        assert private.stats.shuffle_requests_handled == 0
        assert monitor.drop_count("nat_filtered") >= 1


class TestNylon:
    def _small_system(self, sim, hosts, n_public=3, n_private=3):
        config = quiet(NylonConfig)
        nodes = [Nylon(hosts.public_host(), config) for _ in range(n_public)]
        nodes += [Nylon(hosts.private_host(), config) for _ in range(n_private)]
        publics = [n.address for n in nodes if n.address.is_public]
        for node in nodes:
            node.initialize_view([a for a in publics if a.node_id != node.address.node_id])
            node.start()
        return nodes

    def test_private_nodes_complete_shuffles(self, sim, hosts):
        nodes = self._small_system(sim, hosts)
        sim.run(until=30_000)
        private_nodes = [n for n in nodes if n.address.is_private]
        assert all(n.stats.shuffle_responses_received > 0 for n in private_nodes)

    def test_rvp_table_learns_descriptor_origins(self, sim, hosts):
        nodes = self._small_system(sim, hosts)
        sim.run(until=10_000)
        assert any(len(n.rvp_table) > 0 for n in nodes)

    def test_private_nodes_appear_in_views(self, sim, hosts):
        nodes = self._small_system(sim, hosts)
        sim.run(until=30_000)
        private_ids = {n.address.node_id for n in nodes if n.address.is_private}
        seen_private = set()
        for node in nodes:
            for address in node.neighbor_addresses():
                if address.node_id in private_ids:
                    seen_private.add(address.node_id)
        assert len(seen_private) >= 2

    def test_keepalives_are_sent_by_private_nodes(self, sim, hosts, monitor):
        nodes = self._small_system(sim, hosts)
        sim.run(until=10_000)
        keepalive_bytes = 0
        for node in nodes:
            if node.address.is_private:
                traffic = monitor.node_traffic(node.address.node_id)
                keepalive_bytes += traffic.tx_by_type.get("KeepAlive", 0)
        assert keepalive_bytes > 0

    def test_hole_punch_without_rvp_is_counted(self, sim, hosts):
        config = quiet(NylonConfig)
        initiator = Nylon(hosts.public_host(), config)
        target = Nylon(hosts.private_host(), config)
        # initiator knows the private target but has no RVP route towards it.
        initiator.initialize_view([target.address])
        initiator.start(), target.start()
        sim.run(until=1_500)
        assert initiator.stats.extra.get("shuffles_without_rvp", 0) >= 1


class TestGozar:
    def _small_system(self, sim, hosts, n_public=3, n_private=3):
        config = quiet(GozarConfig, parent_keepalive_every_rounds=2)
        nodes = [Gozar(hosts.public_host(), config) for _ in range(n_public)]
        nodes += [Gozar(hosts.private_host(), config) for _ in range(n_private)]
        publics = [n.address for n in nodes if n.address.is_public]
        for node in nodes:
            node.initialize_view([a for a in publics if a.node_id != node.address.node_id])
            node.start()
        return nodes

    def test_private_nodes_register_parents(self, sim, hosts):
        nodes = self._small_system(sim, hosts)
        sim.run(until=10_000)
        private_nodes = [n for n in nodes if n.address.is_private]
        assert all(len(n.parent_addresses()) > 0 for n in private_nodes)
        public_nodes = [n for n in nodes if n.address.is_public]
        assert sum(n.registered_children for n in public_nodes) >= len(private_nodes)

    def test_descriptors_of_private_nodes_carry_parents(self, sim, hosts):
        nodes = self._small_system(sim, hosts)
        sim.run(until=20_000)
        found_with_parents = False
        for node in nodes:
            for descriptor in node.view:
                if descriptor.is_private and descriptor.parents:
                    found_with_parents = True
        assert found_with_parents

    def test_private_nodes_complete_relayed_shuffles(self, sim, hosts):
        nodes = self._small_system(sim, hosts)
        sim.run(until=30_000)
        private_nodes = [n for n in nodes if n.address.is_private]
        assert all(n.stats.shuffle_responses_received > 0 for n in private_nodes)
        relays = sum(n.stats.extra.get("relayed_messages", 0) for n in nodes)
        assert relays > 0

    def test_public_nodes_do_not_register_parents(self, sim, hosts):
        nodes = self._small_system(sim, hosts)
        sim.run(until=5_000)
        assert all(
            not n.parent_addresses() for n in nodes if n.address.is_public
        )


class TestArrg:
    def test_open_list_populated_after_successful_exchanges(self, sim, hosts):
        config = quiet(ArrgConfig)
        a = Arrg(hosts.public_host(), config)
        b = Arrg(hosts.public_host(), config)
        a.initialize_view([b.address])
        b.initialize_view([a.address])
        a.start(), b.start()
        sim.run(until=5_000)
        assert len(a.open_list) >= 1
        assert len(b.open_list) >= 1

    def test_fallback_used_when_partner_unreachable(self, sim, hosts):
        config = quiet(ArrgConfig, exchange_timeout_ms=200.0)
        a = Arrg(hosts.public_host(), config)
        b = Arrg(hosts.public_host(), config)
        unreachable = Arrg(hosts.private_host(), config)  # NAT blocks the request
        a.initialize_view([b.address, unreachable.address])
        b.initialize_view([a.address])
        for node in (a, b, unreachable):
            node.start()
        sim.run(until=10_000)
        assert a.fallback_exchanges >= 1

    def test_open_list_bounded(self, sim, hosts):
        config = quiet(ArrgConfig, open_list_size=2)
        a = Arrg(hosts.public_host(), config)
        for _ in range(5):
            a._remember_success(hosts.public_host().address)
        assert len(a.open_list) == 2


class TestScenarioIntegrationForBaselines:
    @pytest.mark.parametrize("protocol", ["cyclon", "gozar", "nylon", "arrg"])
    def test_overlay_stays_connected(self, protocol):
        scenario = Scenario(ScenarioConfig(protocol=protocol, seed=5, latency="constant"))
        if protocol == "cyclon":
            scenario.populate(n_public=30, n_private=0)
        else:
            scenario.populate(n_public=8, n_private=22)
        scenario.run_rounds(30)
        from repro.metrics.graph import build_overlay_graph
        from repro.metrics.partition import largest_cluster_fraction

        graph = build_overlay_graph(scenario.overlay_graph())
        assert largest_cluster_fraction(graph) > 0.9
