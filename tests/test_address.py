"""Unit tests for repro.net.address."""

import pytest

from repro.errors import ConfigurationError
from repro.net.address import Endpoint, NatType, NodeAddress, format_ipv4, parse_ipv4


class TestIpv4Helpers:
    def test_format_basic(self):
        assert format_ipv4(0x0A000001) == "10.0.0.1"

    def test_format_zero_and_max(self):
        assert format_ipv4(0) == "0.0.0.0"
        assert format_ipv4(0xFFFFFFFF) == "255.255.255.255"

    def test_format_out_of_range(self):
        with pytest.raises(ConfigurationError):
            format_ipv4(-1)
        with pytest.raises(ConfigurationError):
            format_ipv4(1 << 32)

    def test_parse_basic(self):
        assert parse_ipv4("10.0.0.1") == 0x0A000001

    def test_parse_roundtrip(self):
        for value in (0, 1, 256, 65535, 0x01020304, 0xFFFFFFFF):
            assert parse_ipv4(format_ipv4(value)) == value

    def test_parse_rejects_garbage(self):
        for bad in ("10.0.0", "1.2.3.4.5", "a.b.c.d", "256.0.0.1", "-1.0.0.0", ""):
            with pytest.raises(ConfigurationError):
                parse_ipv4(bad)


class TestEndpoint:
    def test_valid(self):
        endpoint = Endpoint("1.2.3.4", 7000)
        assert str(endpoint) == "1.2.3.4:7000"
        assert endpoint.wire_size == 6

    def test_port_range_validation(self):
        with pytest.raises(ConfigurationError):
            Endpoint("1.2.3.4", 0)
        with pytest.raises(ConfigurationError):
            Endpoint("1.2.3.4", 70000)

    def test_ip_validation(self):
        with pytest.raises(ConfigurationError):
            Endpoint("not-an-ip", 7000)

    def test_with_port(self):
        endpoint = Endpoint("1.2.3.4", 7000)
        other = endpoint.with_port(8000)
        assert other.ip == "1.2.3.4"
        assert other.port == 8000
        assert endpoint.port == 7000  # original untouched

    def test_equality_and_hash(self):
        assert Endpoint("1.2.3.4", 7000) == Endpoint("1.2.3.4", 7000)
        assert Endpoint("1.2.3.4", 7000) != Endpoint("1.2.3.4", 7001)
        assert len({Endpoint("1.2.3.4", 7000), Endpoint("1.2.3.4", 7000)}) == 1

    def test_ordering(self):
        assert Endpoint("1.2.3.4", 1) < Endpoint("1.2.3.4", 2)


class TestNatType:
    def test_flags(self):
        assert NatType.PUBLIC.is_public and not NatType.PUBLIC.is_private
        assert NatType.PRIVATE.is_private and not NatType.PRIVATE.is_public
        assert not NatType.UNKNOWN.is_public and not NatType.UNKNOWN.is_private


class TestNodeAddress:
    def _address(self, node_id=1, nat_type=NatType.PUBLIC):
        return NodeAddress(node_id=node_id, endpoint=Endpoint("1.0.0.1", 7000), nat_type=nat_type)

    def test_identity_is_node_id(self):
        a = self._address(1)
        b = NodeAddress(node_id=1, endpoint=Endpoint("9.9.9.9", 9), nat_type=NatType.PRIVATE,
                        private_endpoint=Endpoint("10.0.0.1", 9))
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_with_other_types(self):
        assert self._address(1) != "node1"

    def test_negative_node_id_rejected(self):
        with pytest.raises(ConfigurationError):
            NodeAddress(node_id=-1, endpoint=Endpoint("1.0.0.1", 7000))

    def test_with_nat_type(self):
        address = self._address(nat_type=NatType.UNKNOWN)
        updated = address.with_nat_type(NatType.PUBLIC)
        assert updated.is_public
        assert address.nat_type is NatType.UNKNOWN
        assert updated.node_id == address.node_id

    def test_with_endpoint(self):
        address = self._address()
        updated = address.with_endpoint(Endpoint("2.0.0.1", 8000))
        assert updated.endpoint == Endpoint("2.0.0.1", 8000)
        assert updated.nat_type == address.nat_type

    def test_wire_size(self):
        # node id (4) + endpoint (6) + nat type (1)
        assert self._address().wire_size == 11

    def test_is_public_private_helpers(self):
        assert self._address(nat_type=NatType.PUBLIC).is_public
        private = NodeAddress(
            node_id=3,
            endpoint=Endpoint("2.0.0.1", 7000),
            nat_type=NatType.PRIVATE,
            private_endpoint=Endpoint("10.0.0.1", 7000),
        )
        assert private.is_private
