"""Property-based tests (hypothesis) for the core data structures and invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.estimator import RatioEstimate, RatioEstimator
from repro.core.sampling import generate_random_sample
from repro.membership.view import PartialView
from repro.metrics.graph import build_overlay_graph, in_degrees
from repro.metrics.partition import connected_components, largest_cluster_fraction
from repro.nat.allocator import AllocationPolicy, PortAllocator
from repro.net.address import format_ipv4, parse_ipv4
from tests.test_descriptor_view import make_descriptor

# ----------------------------------------------------------------------------- addresses


@given(st.integers(min_value=0, max_value=0xFFFFFFFF))
def test_ipv4_roundtrip(value):
    assert parse_ipv4(format_ipv4(value)) == value


@given(st.integers(min_value=0, max_value=0xFFFFFFFF))
def test_ipv4_format_produces_four_octets(value):
    text = format_ipv4(value)
    octets = text.split(".")
    assert len(octets) == 4
    assert all(0 <= int(o) <= 255 for o in octets)


# ----------------------------------------------------------------------------- views

descriptor_lists = st.lists(
    st.tuples(st.integers(min_value=1, max_value=40), st.integers(min_value=0, max_value=30)),
    max_size=40,
)


@given(capacity=st.integers(min_value=1, max_value=12), entries=descriptor_lists)
def test_view_never_exceeds_capacity_or_duplicates(capacity, entries):
    view = PartialView(capacity)
    for node_id, age in entries:
        view.add(make_descriptor(node_id, age=age))
    assert len(view) <= capacity
    ids = view.node_ids()
    assert len(ids) == len(set(ids))


@given(
    capacity=st.integers(min_value=1, max_value=10),
    existing=descriptor_lists,
    received=descriptor_lists,
    self_id=st.integers(min_value=1, max_value=40),
)
def test_update_view_preserves_bound_and_excludes_self(capacity, existing, received, self_id):
    view = PartialView(capacity)
    for node_id, age in existing:
        if node_id != self_id:  # a node never stores its own descriptor to begin with
            view.add(make_descriptor(node_id, age=age))
    sent = view.random_subset(random.Random(0), min(3, capacity))
    view.update_view(
        sent=sent,
        received=[make_descriptor(node_id, age=age) for node_id, age in received],
        self_id=self_id,
    )
    assert len(view) <= capacity
    assert self_id not in view


@given(entries=descriptor_lists)
def test_view_oldest_is_maximal_age(entries):
    view = PartialView(50)
    for node_id, age in entries:
        view.add(make_descriptor(node_id, age=age))
    oldest = view.oldest(random.Random(1))
    if oldest is None:
        assert view.is_empty
    else:
        assert oldest.age == max(d.age for d in view)


@given(entries=descriptor_lists, k=st.integers(min_value=0, max_value=10))
def test_random_subset_members_and_size(entries, k):
    view = PartialView(50)
    for node_id, age in entries:
        view.add(make_descriptor(node_id, age=age))
    subset = view.random_subset(random.Random(2), k)
    assert len(subset) == min(k, len(view))
    ids = [d.node_id for d in subset]
    assert len(ids) == len(set(ids))
    assert all(node_id in view for node_id in ids)


# ----------------------------------------------------------------------------- estimator


@given(
    rounds=st.lists(
        st.tuples(st.integers(min_value=0, max_value=20), st.integers(min_value=0, max_value=20)),
        min_size=1,
        max_size=60,
    ),
    alpha=st.integers(min_value=1, max_value=20),
)
def test_local_estimate_stays_in_unit_interval(rounds, alpha):
    estimator = RatioEstimator(alpha=alpha, gamma=10, is_public=True)
    for public_hits, private_hits in rounds:
        for _ in range(public_hits):
            estimator.record_shuffle_request(True)
        for _ in range(private_hits):
            estimator.record_shuffle_request(False)
        estimator.advance_round()
        estimate = estimator.local_estimate()
        assert estimate is None or 0.0 <= estimate <= 1.0
    assert len(estimator.history_snapshot()) <= alpha


@given(
    estimates=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=30),
            st.floats(min_value=0.0, max_value=1.0),
            st.integers(min_value=0, max_value=60),
        ),
        max_size=60,
    ),
    gamma=st.integers(min_value=1, max_value=30),
    is_public=st.booleans(),
)
def test_merged_estimates_respect_gamma_and_unit_interval(estimates, gamma, is_public):
    estimator = RatioEstimator(alpha=5, gamma=gamma, is_public=is_public)
    estimator.merge_estimates(
        [RatioEstimate(origin, value, age) for origin, value, age in estimates]
    )
    assert all(e.age <= gamma for e in estimator.neighbour_estimates())
    ratio = estimator.estimate_ratio()
    assert ratio is None or 0.0 <= ratio <= 1.0


@given(
    values=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=20)
)
def test_private_estimate_is_mean_of_neighbour_values(values):
    estimator = RatioEstimator(alpha=5, gamma=50, is_public=False)
    estimator.merge_estimates(
        [RatioEstimate(origin_id=i + 1, value=v, age=0) for i, v in enumerate(values)]
    )
    expected = sum(values) / len(values)
    assert abs(estimator.estimate_ratio() - expected) < 1e-9


# ----------------------------------------------------------------------------- sampling


@given(
    n_public=st.integers(min_value=0, max_value=8),
    n_private=st.integers(min_value=0, max_value=8),
    ratio=st.one_of(st.none(), st.floats(min_value=-0.5, max_value=1.5)),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_sample_always_comes_from_a_view_or_is_none(n_public, n_private, ratio, seed):
    public_view = PartialView(max(1, n_public))
    private_view = PartialView(max(1, n_private))
    for node_id in range(1, n_public + 1):
        public_view.add(make_descriptor(node_id, public=True))
    for node_id in range(100, 100 + n_private):
        private_view.add(make_descriptor(node_id, public=False))
    sample = generate_random_sample(public_view, private_view, ratio, random.Random(seed))
    if n_public == 0 and n_private == 0:
        assert sample is None
    else:
        members = set(public_view.node_ids()) | set(private_view.node_ids())
        assert sample.node_id in members


# ----------------------------------------------------------------------------- graphs

graph_strategy = st.dictionaries(
    keys=st.integers(min_value=0, max_value=25),
    values=st.sets(st.integers(min_value=0, max_value=25), max_size=6),
    max_size=26,
)


@given(graph_strategy)
def test_largest_cluster_fraction_bounds(raw):
    graph = build_overlay_graph(raw)
    fraction = largest_cluster_fraction(graph)
    if graph:
        assert 0.0 < fraction <= 1.0
    else:
        assert fraction == 0.0


@given(graph_strategy)
def test_connected_components_partition_the_nodes(raw):
    graph = build_overlay_graph(raw)
    components = connected_components(graph)
    covered = set()
    for component in components:
        assert not (component & covered), "components must be disjoint"
        covered |= component
    assert covered == set(graph)


@given(graph_strategy)
def test_total_in_degree_equals_edge_count(raw):
    graph = build_overlay_graph(raw)
    total_edges = sum(len(neighbours) for neighbours in graph.values())
    assert sum(in_degrees(graph).values()) == total_edges


# ----------------------------------------------------------------------------- NAT ports


@given(
    preferred=st.lists(st.integers(min_value=1024, max_value=2048), max_size=200),
    policy=st.sampled_from(list(AllocationPolicy)),
)
@settings(max_examples=30)
def test_port_allocator_never_hands_out_duplicates(preferred, policy):
    allocator = PortAllocator(policy, rng=random.Random(0))
    allocated = [allocator.allocate(preferred_port=p) for p in preferred]
    assert len(allocated) == len(set(allocated))
