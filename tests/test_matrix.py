"""Tests for the experiment-matrix layer: spec expansion, seed derivation, the sharded
multiprocess runner's parity and crash behaviour, aggregation and the CLI."""

from __future__ import annotations

import json

import pytest

from repro.errors import ExperimentError
from repro.experiments.matrix import (
    SCENARIOS,
    CellSpec,
    MatrixSpec,
    derive_cell_seed,
    register_scenario,
    run_cell,
    unregister_scenario,
)
from repro.experiments.runner import (
    aggregate_json_bytes,
    build_aggregate,
    cells_csv_text,
    run_matrix,
    write_artifacts,
)
from repro.metrics.collector import aggregate_metrics, percentile, summarize_values
from repro.simulator.core import Simulator, derive_seed


# A 2-protocol × 2-seed fixed grid, small enough for CI but real enough to exercise
# simulation, measurement and aggregation end to end.
def small_spec(**overrides) -> MatrixSpec:
    defaults = dict(
        scenarios=("static",),
        protocols=("croupier", "cyclon"),
        sizes=(50,),
        seeds=2,
        rounds=6,
        latency="constant",
        root_seed=7,
    )
    defaults.update(overrides)
    return MatrixSpec(**defaults)


class TestSeedDerivation:
    def test_cell_seed_is_stable_across_sessions(self):
        # Pinned values: the derivation is sha256-based, so it must never drift across
        # platforms or refactors — a drift would silently invalidate every archived
        # matrix aggregate.
        key = "scenario=static;protocol=croupier;size=50;seed=0;rounds=6;public_ratio=0.2"
        assert derive_cell_seed(42, key) == 11297025424507210731
        assert derive_cell_seed(7, key) == 12240249230855319868

    def test_cell_seed_matches_simulator_derivation_rule(self):
        key = CellSpec(
            scenario="static", protocol="croupier", size=10, seed_index=0, rounds=5
        ).key
        assert derive_cell_seed(42, key) == derive_seed(42, "matrix-cell", key)

    def test_distinct_cells_get_distinct_seeds(self):
        cells = small_spec().cells()
        seeds = {derive_cell_seed(7, cell.key) for cell in cells}
        assert len(seeds) == len(cells)

    def test_derive_rng_unchanged_by_refactor(self):
        # derive_seed() was extracted from Simulator.derive_rng; both must agree.
        sim = Simulator(seed=7)
        import random

        assert (
            sim.derive_rng("croupier", 12).random()
            == random.Random(derive_seed(7, "croupier", 12)).random()
        )


class TestSpecExpansion:
    def test_grid_size_and_stable_order(self):
        spec = small_spec(sizes=(30, 50))
        cells = spec.cells()
        assert len(cells) == 2 * 2 * 2  # protocols × sizes × seeds
        assert cells == spec.cells()  # expansion is deterministic
        assert len({c.key for c in cells}) == len(cells)

    def test_paper_variants_expand(self):
        spec = small_spec(scenarios=("churn",), protocols=("croupier",), seeds=1,
                          variants="paper")
        cells = spec.cells()
        fractions = {c.param("churn_fraction") for c in cells}
        assert fractions == {0.001, 0.01, 0.025, 0.05}

    def test_ratio_variant_folds_into_public_ratio(self):
        spec = small_spec(scenarios=("ratio",), protocols=("croupier",), seeds=1,
                          variants="paper")
        ratios = {c.public_ratio for c in spec.cells()}
        assert 0.05 in ratios and 0.9 in ratios
        # No duplicate public_ratio field left in the params.
        assert all(c.param("public_ratio") is None for c in spec.cells())

    def test_validation_rejects_bad_specs(self):
        with pytest.raises(ExperimentError):
            small_spec(scenarios=("no-such-kind",)).validate()
        with pytest.raises(ExperimentError):
            small_spec(seeds=0).validate()
        with pytest.raises(ExperimentError):
            small_spec(protocols=("not-a-protocol",)).validate()
        with pytest.raises(ExperimentError):
            run_matrix(small_spec(), workers=0)


class TestParallelParity:
    def test_parallel_aggregate_bytes_identical_to_sequential(self):
        spec = small_spec()
        sequential = run_matrix(spec, workers=1)
        parallel = run_matrix(spec, workers=4)
        assert len(sequential.results) == 4
        assert not sequential.failed and not parallel.failed
        assert aggregate_json_bytes(sequential) == aggregate_json_bytes(parallel)
        # CSV artifact is deterministic too (it contains no wall-clock values).
        assert cells_csv_text(sequential) == cells_csv_text(parallel)

    def test_results_come_back_in_spec_order(self):
        spec = small_spec()
        run = run_matrix(spec, workers=4)
        assert [r.key for r in run.results] == [c.key for c in spec.cells()]


class TestCrashSurfacing:
    def test_worker_crash_is_a_failed_cell_not_a_hung_pool(self):
        def exploding_cell(ctx):
            raise RuntimeError(f"boom in {ctx.cell.key}")

        register_scenario("boom", exploding_cell, description="test-only crasher")
        try:
            spec = small_spec(scenarios=("static", "boom"), protocols=("croupier",),
                              seeds=1)
            run = run_matrix(spec, workers=2)
        finally:
            unregister_scenario("boom")
        assert len(run.results) == 2
        ok = [r for r in run.results if r.ok]
        failed = run.failed
        assert len(ok) == 1 and len(failed) == 1
        assert failed[0].cell.scenario == "boom"
        assert "RuntimeError" in failed[0].error and "boom" in failed[0].error
        aggregate = run.aggregate
        assert aggregate["failed"] == [failed[0].key]
        assert aggregate["cells"][failed[0].key]["status"] == "failed"

    def test_unknown_scenario_kind_raises_when_run_directly(self):
        cell = CellSpec(scenario="nope", protocol="croupier", size=10, seed_index=0,
                        rounds=2)
        with pytest.raises(ExperimentError):
            run_cell(cell, root_seed=1)


class TestAggregation:
    def test_percentile_linear_interpolation(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == pytest.approx(2.5)
        assert percentile([5.0], 90) == 5.0
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_summaries_and_missing_metrics(self):
        rows = [{"a": 1.0, "b": 2.0}, {"a": 3.0}]
        aggregated = aggregate_metrics(rows)
        assert aggregated["a"]["count"] == 2
        assert aggregated["a"]["mean"] == pytest.approx(2.0)
        assert aggregated["b"]["count"] == 1
        summary = summarize_values([1.0, 2.0, 3.0])
        assert summary["min"] == 1.0 and summary["max"] == 3.0

    def test_aggregate_contains_no_wall_clock(self):
        run = run_matrix(small_spec(protocols=("croupier",), seeds=1), workers=1)
        aggregate = build_aggregate(run.spec, run.results)
        assert "wall" not in json.dumps(aggregate)
        assert aggregate["schema"] == "repro-matrix-aggregate-v2"

    def test_croupier_cells_report_estimation_error_metrics(self):
        run = run_matrix(small_spec(seeds=1), workers=1)
        by_protocol = {r.cell.protocol: r.metrics for r in run.results}
        assert "est_err_avg_final" in by_protocol["croupier"]
        assert "est_err_avg_p90" in by_protocol["croupier"]
        assert "est_err_avg_final" not in by_protocol["cyclon"]
        # The non-estimation metrics exist for every protocol.
        for metrics in by_protocol.values():
            assert "biggest_cluster_fraction" in metrics
            assert "all_bps" in metrics


class TestArtifactsAndCli:
    def test_write_artifacts(self, tmp_path):
        run = run_matrix(small_spec(protocols=("croupier",), seeds=1), workers=1)
        paths = write_artifacts(run, tmp_path)
        aggregate = json.loads(paths["aggregate"].read_text())
        assert aggregate["spec"]["root_seed"] == 7
        csv_text = paths["cells"].read_text()
        assert csv_text.splitlines()[0].startswith("cell_key,scenario,protocol")
        assert "# Experiment matrix summary" in paths["summary"].read_text()

    def test_cli_matrix_and_report_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        out_dir = tmp_path / "mx"
        rc = main([
            "matrix", "--scenarios", "static", "--protocols", "croupier",
            "--sizes", "40", "--seeds", "1", "--rounds", "4",
            "--latency", "constant", "--workers", "1", "--out", str(out_dir),
        ])
        assert rc == 0
        aggregate_path = out_dir / "matrix_aggregate.json"
        assert aggregate_path.exists()
        assert main(["report", str(aggregate_path)]) == 0
        captured = capsys.readouterr()
        assert "Experiment matrix summary" in captured.out

    def test_cli_matrix_exit_code_on_failed_cells(self, tmp_path):
        from repro.cli import main

        register_scenario("cli-boom", lambda ctx: (_ for _ in ()).throw(RuntimeError("x")),
                          description="test-only crasher")
        try:
            rc = main([
                "matrix", "--scenarios", "cli-boom", "--protocols", "croupier",
                "--sizes", "10", "--seeds", "1", "--rounds", "2",
                "--latency", "constant", "--workers", "1",
                "--out", str(tmp_path / "mx"),
            ])
        finally:
            unregister_scenario("cli-boom")
        assert rc == 1

    def test_registry_rejects_duplicates(self):
        assert "static" in SCENARIOS
        with pytest.raises(ExperimentError):
            register_scenario("static", lambda ctx: {})
