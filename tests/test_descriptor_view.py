"""Unit tests for node descriptors and bounded partial views."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.membership.descriptor import NodeDescriptor
from repro.membership.view import PartialView
from repro.net.address import Endpoint, NatType, NodeAddress


def make_descriptor(node_id: int, age: int = 0, public: bool = True) -> NodeDescriptor:
    nat_type = NatType.PUBLIC if public else NatType.PRIVATE
    prefix = "1.0" if public else "2.0"
    address = NodeAddress(
        node_id=node_id,
        endpoint=Endpoint(f"{prefix}.{node_id // 250}.{node_id % 250 + 1}", 7000),
        nat_type=nat_type,
        private_endpoint=None if public else Endpoint(f"10.0.{node_id // 250}.{node_id % 250 + 1}", 7000),
    )
    return NodeDescriptor(address=address, age=age)


class TestNodeDescriptor:
    def test_basic_properties(self):
        d = make_descriptor(5, age=3)
        assert d.node_id == 5
        assert d.age == 3
        assert d.is_public and not d.is_private

    def test_aged_returns_copy(self):
        d = make_descriptor(1, age=2)
        older = d.aged()
        assert older.age == 3
        assert d.age == 2

    def test_copy_shares_the_immutable_instance(self):
        d = make_descriptor(1)
        clone = d.copy()
        assert clone is d  # descriptors are immutable: sharing is always safe
        assert clone.node_id == d.node_id and clone.age == d.age

    def test_descriptor_is_immutable(self):
        d = make_descriptor(1, age=2)
        with pytest.raises(AttributeError):
            d.age = 99
        with pytest.raises(AttributeError):
            del d.age
        assert d.age == 2

    def test_with_age_derives_new_descriptor(self):
        d = make_descriptor(1, age=2)
        older = d.with_age(7)
        assert older.age == 7 and older is not d
        assert d.with_age(2) is d  # no-op rebinding returns the same object

    def test_wire_size_is_cached_and_stable(self):
        d = make_descriptor(1)
        assert d.wire_size == d.wire_size == 12

    def test_freshness_comparison(self):
        assert make_descriptor(1, age=1).is_fresher_than(make_descriptor(1, age=5))
        assert not make_descriptor(1, age=5).is_fresher_than(make_descriptor(1, age=1))

    def test_wire_size_without_parents(self):
        assert make_descriptor(1).wire_size == 12  # 11-byte address + 1-byte age

    def test_wire_size_with_parents(self):
        parents = (make_descriptor(2).address, make_descriptor(3).address)
        d = make_descriptor(1, public=False).with_parents(parents)
        assert d.wire_size == 12 + 2 * 11
        assert d.parents == parents


class TestPartialViewBasics:
    def test_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            PartialView(0)

    def test_add_until_full(self):
        view = PartialView(3)
        for node_id in range(3):
            assert view.add(make_descriptor(node_id))
        assert view.is_full
        assert not view.add(make_descriptor(99))
        assert len(view) == 3

    def test_add_refreshes_existing_with_fresher(self):
        view = PartialView(3)
        view.add(make_descriptor(1, age=5))
        view.add(make_descriptor(1, age=2))
        assert view.get(1).age == 2

    def test_add_keeps_existing_when_stale(self):
        view = PartialView(3)
        view.add(make_descriptor(1, age=2))
        view.add(make_descriptor(1, age=9))
        assert view.get(1).age == 2

    def test_remove_and_contains(self):
        view = PartialView(3)
        view.add(make_descriptor(1))
        assert 1 in view
        removed = view.remove(1)
        assert removed.node_id == 1
        assert 1 not in view
        assert view.remove(1) is None

    def test_stored_descriptors_cannot_be_corrupted(self):
        view = PartialView(3)
        original = make_descriptor(1, age=0)
        view.add(original)
        # Descriptors are immutable, so the view can store shared references without
        # any caller being able to mutate its contents from the outside.
        with pytest.raises(AttributeError):
            original.age = 99
        assert view.get(1).age == 0

    def test_force_add_evicts_oldest_by_default(self):
        view = PartialView(2)
        view.add(make_descriptor(1, age=9))
        view.add(make_descriptor(2, age=1))
        view.force_add(make_descriptor(3, age=0))
        assert 3 in view and 1 not in view

    def test_clear_and_free_slots(self):
        view = PartialView(4)
        view.add(make_descriptor(1))
        assert view.free_slots == 3
        view.clear()
        assert view.is_empty


class TestAgeing:
    def test_increase_ages(self):
        view = PartialView(5)
        view.add(make_descriptor(1, age=0))
        view.add(make_descriptor(2, age=3))
        view.increase_ages()
        assert view.get(1).age == 1
        assert view.get(2).age == 4

    def test_increase_ages_is_lazy(self):
        """Ageing bumps one counter; descriptors materialise on access only."""
        view = PartialView(5)
        view.add(make_descriptor(1, age=0))
        view.increase_ages(3)
        assert view.round_clock == 3
        assert view.age_of(1) == 3
        first = view.get(1)
        assert first.age == 3
        # A second read at the same clock returns the cached materialisation.
        assert view.get(1) is first

    def test_entries_added_after_ageing_keep_relative_ages(self):
        view = PartialView(5)
        view.add(make_descriptor(1, age=0))
        view.increase_ages(5)
        view.add(make_descriptor(2, age=2))
        view.increase_ages()
        assert view.get(1).age == 6
        assert view.get(2).age == 3

    def test_iteration_materialises_current_ages(self):
        view = PartialView(5)
        view.add(make_descriptor(1, age=1))
        view.add(make_descriptor(2, age=4))
        view.increase_ages(2)
        assert sorted((d.node_id, d.age) for d in view) == [(1, 3), (2, 6)]

    def test_drop_older_than(self):
        view = PartialView(5)
        view.add(make_descriptor(1, age=1))
        view.add(make_descriptor(2, age=10))
        dropped = view.drop_older_than(5)
        assert dropped == 1
        assert 1 in view and 2 not in view


class TestSelection:
    def test_oldest_without_rng_breaks_ties_by_id(self):
        view = PartialView(5)
        view.add(make_descriptor(1, age=4))
        view.add(make_descriptor(2, age=4))
        view.add(make_descriptor(3, age=1))
        assert view.oldest().node_id == 2

    def test_oldest_with_rng_is_uniform_over_ties(self):
        view = PartialView(5)
        for node_id in range(1, 5):
            view.add(make_descriptor(node_id, age=7))
        rng = random.Random(0)
        chosen = {view.oldest(rng).node_id for _ in range(200)}
        assert chosen == {1, 2, 3, 4}

    def test_oldest_prefers_strictly_older(self):
        view = PartialView(5)
        view.add(make_descriptor(1, age=2))
        view.add(make_descriptor(2, age=9))
        assert view.oldest(random.Random(0)).node_id == 2

    def test_oldest_empty_view(self):
        assert PartialView(3).oldest() is None

    def test_random_descriptor(self):
        view = PartialView(5)
        view.add(make_descriptor(1))
        assert view.random_descriptor(random.Random(0)).node_id == 1
        assert PartialView(3).random_descriptor(random.Random(0)) is None

    def test_random_subset_size_and_exclusion(self):
        view = PartialView(10)
        for node_id in range(10):
            view.add(make_descriptor(node_id))
        rng = random.Random(1)
        subset = view.random_subset(rng, 4, exclude_ids=(0, 1))
        assert len(subset) == 4
        assert all(d.node_id not in (0, 1) for d in subset)
        # asking for more than available returns all candidates
        everything = view.random_subset(rng, 50)
        assert len(everything) == 10

    def test_random_subset_entries_are_immutable(self):
        view = PartialView(3)
        view.add(make_descriptor(1, age=0))
        subset = view.random_subset(random.Random(0), 1)
        with pytest.raises(AttributeError):
            subset[0].age = 42
        assert view.get(1).age == 0

    def test_random_subset_carries_current_ages(self):
        view = PartialView(3)
        view.add(make_descriptor(1, age=0))
        view.increase_ages(4)
        subset = view.random_subset(random.Random(0), 1)
        assert subset[0].age == 4  # sender-relative age at send time


class TestUpdateView:
    """The swapper merge of Algorithm 2 (lines 46–58)."""

    def test_adds_when_space_available(self):
        view = PartialView(5)
        view.update_view(sent=[], received=[make_descriptor(1), make_descriptor(2)], self_id=99)
        assert len(view) == 2

    def test_skips_own_descriptor(self):
        view = PartialView(5)
        view.update_view(sent=[], received=[make_descriptor(99)], self_id=99)
        assert len(view) == 0

    def test_refreshes_existing_entries(self):
        view = PartialView(5)
        view.add(make_descriptor(1, age=8))
        view.update_view(sent=[], received=[make_descriptor(1, age=0)], self_id=99)
        assert view.get(1).age == 0

    def test_swaps_out_sent_descriptors_when_full(self):
        view = PartialView(3)
        for node_id in (1, 2, 3):
            view.add(make_descriptor(node_id))
        sent = [view.get(1)]
        view.update_view(sent=sent, received=[make_descriptor(7)], self_id=99)
        assert 7 in view
        assert 1 not in view
        assert len(view) == 3

    def test_drops_received_when_full_and_nothing_was_sent(self):
        view = PartialView(2)
        view.add(make_descriptor(1))
        view.add(make_descriptor(2))
        view.update_view(sent=[], received=[make_descriptor(3)], self_id=99)
        assert 3 not in view
        assert len(view) == 2

    def test_never_exceeds_capacity(self):
        view = PartialView(4)
        for node_id in range(4):
            view.add(make_descriptor(node_id))
        sent = view.random_subset(random.Random(0), 2)
        received = [make_descriptor(100 + i) for i in range(6)]
        view.update_view(sent=sent, received=received, self_id=99)
        assert len(view) <= 4

    def test_large_batch_swapper_eviction(self):
        """Regression test for the O(n²) ``sent_queue.pop(0)`` eviction.

        A large view merging a large received batch must evict the sent descriptors in
        FIFO order, one per admitted newcomer, with the queue drained exactly once —
        the deque-based queue keeps this linear in the batch size.
        """
        size = 5000
        view = PartialView(size)
        for node_id in range(size):
            view.add(make_descriptor(node_id))
        assert view.is_full
        sent = [view.get(node_id) for node_id in range(size)]
        received = [make_descriptor(size + i) for i in range(size)]
        view.update_view(sent=sent, received=received, self_id=10 * size)
        assert len(view) == size
        # Every received descriptor displaced exactly one sent descriptor, in order.
        assert all(size + i in view for i in range(size))
        assert all(node_id not in view for node_id in range(size))

    def test_swapper_eviction_skips_already_evicted_sent_entries(self):
        view = PartialView(2)
        view.add(make_descriptor(1))
        view.add(make_descriptor(2))
        sent = [view.get(1), view.get(2)]
        view.remove(1)  # sent entry no longer present: the queue must skip it
        view.add(make_descriptor(3))
        view.update_view(sent=sent, received=[make_descriptor(7)], self_id=99)
        assert 7 in view and 2 not in view and 3 in view
