"""Unit tests for Croupier's public/private ratio estimator (Section VI)."""

import random

import pytest

from repro.core.estimator import RatioEstimate, RatioEstimator
from repro.errors import ConfigurationError


class TestRatioEstimateRecord:
    def test_aged_copy(self):
        estimate = RatioEstimate(origin_id=1, value=0.2, age=0)
        older = estimate.aged()
        assert older.age == 1 and estimate.age == 0
        assert older.value == estimate.value

    def test_freshness(self):
        assert RatioEstimate(1, 0.2, age=0).is_fresher_than(RatioEstimate(1, 0.3, age=4))

    def test_wire_size_is_five_bytes(self):
        """Section VII: 5 bytes per piggy-backed estimation."""
        assert RatioEstimate(1, 0.2).wire_size == 5


class TestLocalEstimate:
    def test_parameters_validated(self):
        with pytest.raises(ConfigurationError):
            RatioEstimator(alpha=0, gamma=10, is_public=True)
        with pytest.raises(ConfigurationError):
            RatioEstimator(alpha=10, gamma=0, is_public=True)

    def test_no_requests_no_estimate(self):
        estimator = RatioEstimator(alpha=5, gamma=10, is_public=True)
        assert estimator.local_estimate() is None
        estimator.advance_round()
        assert estimator.local_estimate() is None

    def test_ratio_of_recorded_hits(self):
        estimator = RatioEstimator(alpha=5, gamma=10, is_public=True)
        for _ in range(2):
            estimator.record_shuffle_request(sender_is_public=True)
        for _ in range(8):
            estimator.record_shuffle_request(sender_is_public=False)
        estimator.advance_round()
        assert estimator.local_estimate() == pytest.approx(0.2)

    def test_private_node_has_no_local_estimate(self):
        estimator = RatioEstimator(alpha=5, gamma=10, is_public=False)
        estimator.record_shuffle_request(sender_is_public=True)
        estimator.advance_round()
        assert estimator.local_estimate() is None
        assert estimator.own_estimate_record(1) is None

    def test_alpha_window_bounds_history(self):
        estimator = RatioEstimator(alpha=3, gamma=10, is_public=True)
        # Three rounds of only-private hits, then three rounds of only-public hits:
        # with α=3 only the public rounds remain in the window.
        for _ in range(3):
            estimator.record_shuffle_request(False)
            estimator.advance_round()
        for _ in range(3):
            estimator.record_shuffle_request(True)
            estimator.advance_round()
        assert estimator.local_estimate() == pytest.approx(1.0)
        assert len(estimator.history_snapshot()) == 3

    def test_current_round_hits_reset_each_round(self):
        estimator = RatioEstimator(alpha=5, gamma=10, is_public=True)
        estimator.record_shuffle_request(True)
        estimator.advance_round()
        assert estimator.current_round_hits == (0, 0)

    def test_own_estimate_record_carries_value(self):
        estimator = RatioEstimator(alpha=5, gamma=10, is_public=True)
        estimator.record_shuffle_request(True)
        estimator.record_shuffle_request(False)
        estimator.advance_round()
        record = estimator.own_estimate_record(node_id=42)
        assert record.origin_id == 42
        assert record.value == pytest.approx(0.5)
        assert record.age == 0


class TestNeighbourEstimates:
    def test_merge_keeps_freshest_per_origin(self):
        estimator = RatioEstimator(alpha=5, gamma=10, is_public=False)
        estimator.merge_estimates([RatioEstimate(1, 0.3, age=4)])
        estimator.merge_estimates([RatioEstimate(1, 0.25, age=1)])
        estimator.merge_estimates([RatioEstimate(1, 0.99, age=9)])  # stale: ignored
        estimates = estimator.neighbour_estimates()
        assert len(estimates) == 1
        assert estimates[0].value == pytest.approx(0.25)

    def test_merge_ignores_none_and_too_old(self):
        estimator = RatioEstimator(alpha=5, gamma=3, is_public=False)
        merged = estimator.merge_estimates([None, RatioEstimate(1, 0.5, age=10)])
        assert merged == 0
        assert estimator.neighbour_estimate_count == 0

    def test_gamma_expiry_on_round_advance(self):
        estimator = RatioEstimator(alpha=5, gamma=2, is_public=False)
        estimator.merge_estimates([RatioEstimate(1, 0.4, age=0)])
        estimator.advance_round()
        assert estimator.neighbour_estimate_count == 1
        estimator.advance_round()
        assert estimator.neighbour_estimate_count == 1
        estimator.advance_round()  # age becomes 3 > γ=2
        assert estimator.neighbour_estimate_count == 0

    def test_estimates_subset_bounded(self):
        estimator = RatioEstimator(alpha=5, gamma=50, is_public=False)
        estimator.merge_estimates([RatioEstimate(i, 0.2, age=0) for i in range(20)])
        subset = estimator.estimates_subset(random.Random(0), 10)
        assert len(subset) == 10
        everything = estimator.estimates_subset(random.Random(0), 100)
        assert len(everything) == 20


class TestEstimateRatio:
    def test_private_node_averages_neighbours_only(self):
        """Equation 9."""
        estimator = RatioEstimator(alpha=5, gamma=50, is_public=False)
        assert estimator.estimate_ratio() is None
        estimator.merge_estimates([RatioEstimate(1, 0.1), RatioEstimate(2, 0.3)])
        assert estimator.estimate_ratio() == pytest.approx(0.2)

    def test_public_node_includes_own_estimate(self):
        """Equation 8."""
        estimator = RatioEstimator(alpha=5, gamma=50, is_public=True)
        estimator.record_shuffle_request(True)  # local estimate = 1.0
        estimator.advance_round()
        estimator.merge_estimates([RatioEstimate(1, 0.0), RatioEstimate(2, 0.5)])
        assert estimator.estimate_ratio() == pytest.approx((0.0 + 0.5 + 1.0) / 3)

    def test_public_node_without_hits_averages_neighbours(self):
        estimator = RatioEstimator(alpha=5, gamma=50, is_public=True)
        estimator.merge_estimates([RatioEstimate(1, 0.4)])
        assert estimator.estimate_ratio() == pytest.approx(0.4)

    def test_estimate_stays_in_unit_interval(self):
        estimator = RatioEstimator(alpha=5, gamma=50, is_public=True)
        rng = random.Random(0)
        for _ in range(30):
            for _ in range(rng.randint(0, 5)):
                estimator.record_shuffle_request(rng.random() < 0.3)
            estimator.merge_estimates(
                [RatioEstimate(rng.randint(1, 9), rng.random(), age=rng.randint(0, 3))]
            )
            estimator.advance_round()
            value = estimator.estimate_ratio()
            assert value is None or 0.0 <= value <= 1.0
