"""Unit tests for the graph, partition, estimation and overhead metrics."""

import random

import pytest

from repro.metrics.collector import TimeSeries, merge_series
from repro.metrics.estimation import (
    EstimationErrorSeries,
    average_error,
    max_error,
)
from repro.metrics.graph import (
    average_clustering_coefficient,
    average_path_length,
    build_overlay_graph,
    clustering_coefficient,
    degree_statistics,
    in_degree_distribution,
    in_degrees,
    out_degrees,
)
from repro.metrics.overhead import measure_overhead
from repro.metrics.partition import (
    connected_components,
    largest_cluster_fraction,
    partition_count,
)
from repro.net.address import Endpoint, NatType, NodeAddress
from repro.simulator.message import Message
from repro.simulator.monitor import TrafficMonitor


def ring_graph(n):
    return {i: {(i + 1) % n} for i in range(n)}


def star_graph(n):
    graph = {0: set(range(1, n))}
    for i in range(1, n):
        graph[i] = set()
    return graph


def complete_graph(n):
    return {i: {j for j in range(n) if j != i} for i in range(n)}


class TestInDegrees:
    def test_ring_in_degrees_all_one(self):
        degrees = in_degrees(ring_graph(6))
        assert all(d == 1 for d in degrees.values())

    def test_star_in_degrees(self):
        degrees = in_degrees(star_graph(5))
        assert degrees[0] == 0
        assert all(degrees[i] == 1 for i in range(1, 5))

    def test_distribution_histogram(self):
        histogram = in_degree_distribution(star_graph(5))
        assert histogram == {0: 1, 1: 4}

    def test_edges_to_unknown_nodes_ignored(self):
        graph = {1: {2, 99}, 2: set()}
        assert in_degrees(graph)[2] == 1
        assert 99 not in in_degrees(graph)

    def test_self_loops_ignored(self):
        graph = {1: {1, 2}, 2: set()}
        assert in_degrees(graph)[1] == 0

    def test_degree_statistics(self):
        stats = degree_statistics(complete_graph(4))
        assert stats["mean"] == pytest.approx(3.0)
        assert stats["stddev"] == pytest.approx(0.0)
        assert degree_statistics({})["mean"] == 0.0

    def test_out_degrees(self):
        assert sorted(out_degrees(star_graph(4))) == [0, 0, 0, 3]


class TestPathLength:
    def test_complete_graph_path_length_one(self):
        assert average_path_length(complete_graph(5)) == pytest.approx(1.0)

    def test_ring_path_length(self):
        # Undirected 4-ring: distances from any node are 1, 1, 2 -> average 4/3.
        assert average_path_length(ring_graph(4)) == pytest.approx(4.0 / 3.0)

    def test_tiny_graphs_return_none(self):
        assert average_path_length({}) is None
        assert average_path_length({1: set()}) is None

    def test_disconnected_pairs_are_skipped(self):
        graph = {1: {2}, 2: set(), 3: {4}, 4: set()}
        assert average_path_length(graph) == pytest.approx(1.0)

    def test_sampled_estimate_close_to_exact(self):
        rng = random.Random(0)
        graph = {i: {rng.randrange(50) for _ in range(4)} for i in range(50)}
        exact = average_path_length(graph)
        sampled = average_path_length(graph, sample_sources=25, rng=random.Random(1))
        assert abs(exact - sampled) < 0.4


class TestClustering:
    def test_complete_graph_clustering_one(self):
        assert average_clustering_coefficient(complete_graph(5)) == pytest.approx(1.0)

    def test_star_graph_clustering_zero(self):
        assert average_clustering_coefficient(star_graph(6)) == pytest.approx(0.0)

    def test_triangle_plus_tail(self):
        graph = {1: {2, 3}, 2: {3}, 3: set(), 4: {1}}
        # nodes 1,2,3 form a triangle; node 4 dangles off node 1.
        assert clustering_coefficient(graph, 2) == pytest.approx(1.0)
        assert clustering_coefficient(graph, 4) == pytest.approx(0.0)
        assert 0.0 < average_clustering_coefficient(graph) < 1.0

    def test_empty_graph_returns_none(self):
        assert average_clustering_coefficient({}) is None


class TestPartition:
    def test_single_component(self):
        assert partition_count(ring_graph(5)) == 1
        assert largest_cluster_fraction(ring_graph(5)) == pytest.approx(1.0)

    def test_two_components(self):
        graph = {1: {2}, 2: set(), 3: {4}, 4: set(), 5: set()}
        components = connected_components(graph)
        assert len(components) == 3
        assert largest_cluster_fraction(graph) == pytest.approx(2 / 5)

    def test_empty_graph(self):
        assert largest_cluster_fraction({}) == 0.0
        assert partition_count({}) == 0

    def test_components_sorted_by_size(self):
        graph = {1: set(), 2: {3}, 3: {4}, 4: set()}
        components = connected_components(graph)
        assert len(components[0]) == 3


class TestBuildOverlayGraph:
    def test_drops_edges_to_unknown_nodes(self):
        graph = build_overlay_graph({1: [2, 99], 2: [1]})
        assert graph == {1: {2}, 2: {1}}

    def test_drops_self_edges(self):
        graph = build_overlay_graph({1: [1, 2], 2: []})
        assert graph[1] == {2}


class TestEstimationMetrics:
    def test_average_and_max_error(self):
        estimates = [0.25, 0.15, None, 0.2]
        assert average_error(0.2, estimates) == pytest.approx(0.1 / 3)
        assert max_error(0.2, estimates) == pytest.approx(0.05)

    def test_no_estimates_returns_none(self):
        assert average_error(0.2, [None, None]) is None
        assert max_error(0.2, []) is None

    def test_series_recording_and_summaries(self):
        series = EstimationErrorSeries(name="test")
        for round_index in range(20):
            error = 0.2 if round_index < 10 else 0.001
            series.record(round_index * 1000.0, 0.2, [0.2 + error, 0.2 - error])
        assert len(series) == 20
        assert series.final_avg_error(tail=5) == pytest.approx(0.001)
        assert series.final_max_error(tail=5) == pytest.approx(0.001)
        assert series.convergence_time(0.01) == pytest.approx(10_000.0)

    def test_convergence_never_reached(self):
        series = EstimationErrorSeries(name="test")
        series.record(0.0, 0.2, [0.9])
        assert series.convergence_time(0.01) is None

    def test_samples_with_no_known_estimates(self):
        series = EstimationErrorSeries(name="test")
        sample = series.record(0.0, 0.2, [None, None])
        assert sample.avg_error is None and sample.nodes_measured == 0


class TestTimeSeries:
    def test_basic_operations(self):
        series = TimeSeries(name="x")
        for i in range(10):
            series.record(float(i), float(i) * 2)
        assert len(series) == 10
        assert series.last() == 18.0
        assert series.tail_average(2) == pytest.approx(17.0)
        assert series.minimum() == 0.0 and series.maximum() == 18.0
        assert series.value_at(4.5) == 8.0
        assert series.points()[0] == (0.0, 0.0)

    def test_empty_series(self):
        series = TimeSeries(name="empty")
        assert series.last() is None
        assert series.tail_average(3) is None
        assert series.value_at(10.0) is None

    def test_merge_series(self):
        a, b = TimeSeries(name="a"), TimeSeries(name="b")
        merged = merge_series([a, b])
        assert set(merged) == {"a", "b"}


class _FakeMessage(Message):
    def payload_size(self) -> int:
        return 72


class TestOverheadMeasurement:
    def test_measure_overhead_windows(self):
        monitor = TrafficMonitor()
        public = NodeAddress(1, Endpoint("1.0.0.1", 7000), NatType.PUBLIC)
        private = NodeAddress(
            2, Endpoint("2.0.0.1", 7000), NatType.PRIVATE, private_endpoint=Endpoint("10.0.0.1", 7000)
        )
        snapshot = monitor.snapshot(0.0)
        message = _FakeMessage()
        for _ in range(10):
            monitor.record_sent(public, message)
        for _ in range(5):
            monitor.record_sent(private, message)
        report = measure_overhead(
            protocol="croupier",
            monitor=monitor,
            window_start=snapshot,
            now_ms=10_000.0,
            public_node_ids=[1],
            private_node_ids=[2],
        )
        assert report.window_seconds == pytest.approx(10.0)
        assert report.public_bytes_per_second == pytest.approx(10 * 100 / 10.0)
        assert report.private_bytes_per_second == pytest.approx(5 * 100 / 10.0)
        assert report.all_bytes_per_second == pytest.approx(15 * 100 / 10.0 / 2)
        row = report.as_row()
        assert set(row) == {"public B/s", "private B/s", "all B/s"}

    def test_snapshot_isolation(self):
        monitor = TrafficMonitor()
        node = NodeAddress(1, Endpoint("1.0.0.1", 7000), NatType.PUBLIC)
        monitor.record_sent(node, _FakeMessage())
        snapshot = monitor.snapshot(0.0)
        monitor.record_sent(node, _FakeMessage())
        load = monitor.average_load_bps(snapshot, 1_000.0)
        assert load == pytest.approx(100.0)  # only the second message is in the window

    def test_zero_window_returns_zero(self):
        monitor = TrafficMonitor()
        snapshot = monitor.snapshot(5_000.0)
        assert monitor.average_load_bps(snapshot, 5_000.0) == 0.0
