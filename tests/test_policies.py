"""Unit tests for the node-selection and view-merge policies."""

import random

from repro.membership.policies import (
    MergePolicy,
    SelectionPolicy,
    merge_views,
    select_partner,
)
from repro.membership.view import PartialView
from tests.test_descriptor_view import make_descriptor


class TestSelectPartner:
    def test_tail_selects_oldest(self):
        view = PartialView(5)
        view.add(make_descriptor(1, age=2))
        view.add(make_descriptor(2, age=7))
        chosen = select_partner(view, SelectionPolicy.TAIL, random.Random(0))
        assert chosen.node_id == 2

    def test_random_selects_any_member(self):
        view = PartialView(5)
        for node_id in range(5):
            view.add(make_descriptor(node_id))
        rng = random.Random(3)
        seen = {select_partner(view, SelectionPolicy.RANDOM, rng).node_id for _ in range(100)}
        assert seen == set(range(5))

    def test_empty_view_returns_none(self):
        assert select_partner(PartialView(3), SelectionPolicy.TAIL, random.Random(0)) is None


class TestMergePolicies:
    def test_swapper_delegates_to_update_view(self):
        view = PartialView(2)
        view.add(make_descriptor(1))
        view.add(make_descriptor(2))
        merge_views(
            view,
            sent=[view.get(1)],
            received=[make_descriptor(5)],
            self_id=99,
            policy=MergePolicy.SWAPPER,
        )
        assert 5 in view and 1 not in view

    def test_healer_keeps_freshest_overall(self):
        view = PartialView(2)
        view.add(make_descriptor(1, age=9))
        view.add(make_descriptor(2, age=8))
        merge_views(
            view,
            sent=[],
            received=[make_descriptor(3, age=0), make_descriptor(4, age=1)],
            self_id=99,
            policy=MergePolicy.HEALER,
        )
        assert set(view.node_ids()) == {3, 4}

    def test_healer_respects_capacity(self):
        view = PartialView(3)
        for node_id in range(3):
            view.add(make_descriptor(node_id, age=5))
        merge_views(
            view,
            sent=[],
            received=[make_descriptor(10 + i, age=i) for i in range(5)],
            self_id=99,
            policy=MergePolicy.HEALER,
        )
        assert len(view) == 3

    def test_healer_skips_self(self):
        view = PartialView(3)
        merge_views(
            view,
            sent=[],
            received=[make_descriptor(99, age=0)],
            self_id=99,
            policy=MergePolicy.HEALER,
        )
        assert len(view) == 0

    def test_healer_refreshes_existing(self):
        view = PartialView(3)
        view.add(make_descriptor(1, age=9))
        merge_views(
            view,
            sent=[],
            received=[make_descriptor(1, age=0)],
            self_id=99,
            policy=MergePolicy.HEALER,
        )
        assert view.get(1).age == 0
