"""Shared fixtures for the test suite: simulators, networks, hosts and NAT boxes."""

from __future__ import annotations

import itertools

import pytest

from repro.nat.nat_box import NatBox
from repro.nat.types import NatProfile
from repro.net.address import Endpoint, NatType, NodeAddress
from repro.simulator.core import Simulator
from repro.simulator.latency import ConstantLatency
from repro.simulator.host import Host
from repro.simulator.monitor import TrafficMonitor
from repro.simulator.network import Network

_node_counter = itertools.count(1)


@pytest.fixture
def sim() -> Simulator:
    return Simulator(seed=1234)


@pytest.fixture
def monitor() -> TrafficMonitor:
    return TrafficMonitor()


@pytest.fixture
def network(sim, monitor) -> Network:
    return Network(sim, latency_model=ConstantLatency(10.0), monitor=monitor)


class HostFactory:
    """Creates public and private hosts with unique, valid addresses."""

    def __init__(self, sim: Simulator, network: Network) -> None:
        self.sim = sim
        self.network = network
        self._public_ip = itertools.count(1)
        self._nat_ip = itertools.count(1)
        self._private_ip = itertools.count(1)

    def public_host(self, port: int = 7000) -> Host:
        node_id = next(_node_counter)
        ip = f"1.0.{next(self._public_ip) // 250}.{next(self._public_ip) % 250 + 1}"
        address = NodeAddress(
            node_id=node_id, endpoint=Endpoint(ip, port), nat_type=NatType.PUBLIC
        )
        return Host(self.sim, self.network, address)

    def private_host(self, port: int = 7000, profile: NatProfile = None) -> Host:
        node_id = next(_node_counter)
        external = f"2.0.{next(self._nat_ip) // 250}.{next(self._nat_ip) % 250 + 1}"
        internal = f"10.0.{next(self._private_ip) // 250}.{next(self._private_ip) % 250 + 1}"
        natbox = NatBox(external, profile=profile or NatProfile.restricted_cone())
        address = NodeAddress(
            node_id=node_id,
            endpoint=Endpoint(external, port),
            nat_type=NatType.PRIVATE,
            private_endpoint=Endpoint(internal, port),
        )
        return Host(self.sim, self.network, address, natbox=natbox)


@pytest.fixture
def hosts(sim, network) -> HostFactory:
    return HostFactory(sim, network)
