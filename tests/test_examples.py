"""Subprocess smoke tests for every script under examples/.

The examples exercise public API surface that unit tests don't (quickstart,
dissemination-on-top-of-Croupier, NAT identification, protocol comparison); running
them in a subprocess catches API drift — like a refactor freezing ``NodeDescriptor`` or
making ``PartialView`` lazy — before a user does. Sizes are overridden via argv where
the scripts support it, to keep CI time bounded.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = REPO_ROOT / "examples"

#: script name -> (argv, a string its stdout must contain)
CASES = {
    "quickstart.py": ([], "samples drawn through the PSS API"),
    "gossip_dissemination.py": (["60", "25"], "informed"),
    "nat_identification.py": ([], "UPnP"),
    "protocol_comparison.py": (["60", "24"], "croupier"),
}


def _run_example(script: str, argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *argv],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
        cwd=str(REPO_ROOT),
    )


@pytest.mark.example
@pytest.mark.parametrize("script", sorted(CASES))
def test_example_runs_clean(script):
    argv, expected = CASES[script]
    result = _run_example(script, argv)
    assert result.returncode == 0, (
        f"{script} exited {result.returncode}\nstdout:\n{result.stdout[-2000:]}"
        f"\nstderr:\n{result.stderr[-2000:]}"
    )
    assert expected in result.stdout, (
        f"{script} output drifted: expected {expected!r} in stdout\n{result.stdout[-2000:]}"
    )


def test_all_examples_are_covered():
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    assert scripts == set(CASES), (
        "examples/ changed — update CASES in tests/test_examples.py so every example "
        "stays under the CI smoke test"
    )
