"""Streaming accumulators vs materialised metrics: exact parity, byte for byte.

The columnar engine never materialises per-node value lists; it streams
observations into :class:`StreamingHistogram` / :class:`ReservoirSample`. These
tests pin the contract that makes that safe: a streamed histogram is **exactly**
the histogram the object backend's probes would have built from the raw values —
same integer bins, same counts, same serialised bytes once it lands in a
:class:`MetricPayload` and an aggregate JSON.
"""

import json
import random
from collections import Counter

import pytest

from repro.columnar.streaming import ReservoirSample, StreamingHistogram
from repro.metrics.payload import MetricPayload, histogram_statistics, merge_histograms


def payload_bytes(payload: MetricPayload) -> bytes:
    """Serialise the way the aggregate writer does: sorted keys, canonical JSON."""
    return json.dumps(payload.to_json_dict(), sort_keys=True).encode()


# ------------------------------------------------------------ histogram parity


class TestStreamingHistogram:
    def test_matches_counter_exactly(self):
        rng = random.Random(31)
        values = [rng.randrange(0, 40) for _ in range(5000)]
        streamed = StreamingHistogram()
        streamed.add_many(values)
        assert streamed.to_histogram() == dict(Counter(values))
        assert streamed.total == len(values)
        assert len(streamed) == len(set(values))

    def test_add_with_count_and_prebinned_fold(self):
        rng = random.Random(32)
        values = [rng.randrange(0, 12) for _ in range(800)]
        one_by_one = StreamingHistogram()
        for value in values:
            one_by_one.add(value)
        prebinned = StreamingHistogram()
        prebinned.add_counts(Counter(values))
        assert one_by_one.to_histogram() == prebinned.to_histogram()

    def test_add_counts_skips_zero_counts(self):
        histogram = StreamingHistogram()
        histogram.add_counts({3: 0, 4: 2})
        assert histogram.to_histogram() == {4: 2}

    def test_merge_is_binwise_sum(self):
        rng = random.Random(33)
        chunks = [[rng.randrange(0, 20) for _ in range(500)] for _ in range(4)]
        merged = StreamingHistogram()
        for chunk in chunks:
            part = StreamingHistogram()
            part.add_many(chunk)
            merged.merge(part)
        flat = [value for chunk in chunks for value in chunk]
        assert merged.to_histogram() == dict(Counter(flat))
        # ...and agrees with the aggregate-side merger used across cell seeds.
        parts = [dict(Counter(chunk)) for chunk in chunks]
        assert merged.to_histogram() == merge_histograms(parts)

    def test_values_are_binned_as_ints(self):
        histogram = StreamingHistogram()
        histogram.add_many([1.9, 1.2, 2.0])
        assert histogram.to_histogram() == {1: 2, 2: 1}

    def test_statistics_match_materialised(self):
        rng = random.Random(34)
        values = [rng.randrange(0, 50) for _ in range(3000)]
        streamed = StreamingHistogram()
        streamed.add_many(values)
        stats = histogram_statistics(streamed.to_histogram())
        assert stats == histogram_statistics(dict(Counter(values)))
        assert stats["count"] == len(values)
        assert stats["mean"] == pytest.approx(sum(values) / len(values))


# ----------------------------------------------------- payload + JSON round trip


class TestPayloadParity:
    def test_streamed_payload_bytes_equal_materialised(self):
        """The load-bearing byte contract: a streamed histogram serialises to the
        identical aggregate bytes as one built from the materialised values."""
        rng = random.Random(35)
        values = [rng.randrange(0, 30) for _ in range(2000)]

        streamed = StreamingHistogram()
        streamed.add_many(values)
        via_stream = MetricPayload()
        via_stream.set_histogram("in_degree", streamed.to_histogram())

        via_values = MetricPayload()
        via_values.set_histogram("in_degree", Counter(values))

        assert payload_bytes(via_stream) == payload_bytes(via_values)

    def test_json_round_trip_is_lossless(self):
        streamed = StreamingHistogram()
        streamed.add_many([0, 0, 3, 17, 17, 17])
        payload = MetricPayload()
        payload.set_histogram("in_degree", streamed.to_histogram())
        payload.set_scalar("live_nodes", 6.0)

        wire = json.loads(json.dumps(payload.to_json_dict(), sort_keys=True))
        restored = MetricPayload.from_json_dict(wire)
        # Bins come back as ints, not the JSON string keys.
        assert restored.histograms["in_degree"] == {0: 2, 3: 1, 17: 3}
        assert payload_bytes(restored) == payload_bytes(payload)

    def test_engine_in_degree_histogram_round_trips(self):
        """End to end: the columnar engine's streamed in-degree histogram equals a
        hand-materialised count and survives the aggregate JSON round trip."""
        from repro.columnar import ColumnarScenario
        from repro.workload.scenario import ScenarioConfig

        scenario = ColumnarScenario(
            ScenarioConfig(protocol="croupier", seed=23, latency="constant",
                           engine="columnar")
        )
        scenario.populate(8, 32)
        scenario.run_rounds(12)

        streamed = scenario.engine.in_degree_histogram().to_histogram()
        graph = scenario.overlay_graph()
        in_degrees = Counter()
        for node in graph:
            in_degrees[node] = 0
        for view in graph.values():
            for target in view:
                in_degrees[target] += 1
        materialised = Counter(in_degrees.values())
        assert streamed == dict(materialised)

        payload = MetricPayload()
        payload.set_histogram("in_degree", streamed)
        wire = json.loads(json.dumps(payload.to_json_dict(), sort_keys=True))
        assert MetricPayload.from_json_dict(wire).histograms["in_degree"] == streamed


# --------------------------------------------------------------- reservoir sample


class TestReservoirSample:
    def test_keeps_everything_below_capacity(self):
        reservoir = ReservoirSample(10, rng=random.Random(1))
        reservoir.extend([1.0, 2.0, 3.0])
        assert reservoir.values == [1.0, 2.0, 3.0]
        assert reservoir.seen == 3
        assert len(reservoir) == 3

    def test_capacity_is_a_hard_bound(self):
        reservoir = ReservoirSample(16, rng=random.Random(2))
        reservoir.extend(float(i) for i in range(10_000))
        assert len(reservoir) == 16
        assert reservoir.seen == 10_000
        assert all(0.0 <= v < 10_000.0 for v in reservoir.values)

    def test_deterministic_given_rng(self):
        samples = []
        for _ in range(2):
            reservoir = ReservoirSample(8, rng=random.Random(42))
            reservoir.extend(float(i) for i in range(1000))
            samples.append(reservoir.values)
        assert samples[0] == samples[1]

    def test_matches_reference_algorithm_r(self):
        """Bit-for-bit against a transparent Algorithm R implementation driven by
        the same rng stream — the class adds no hidden draws."""
        rng_a, rng_b = random.Random(7), random.Random(7)
        capacity, stream = 5, [float(i) for i in range(200)]

        reservoir = ReservoirSample(capacity, rng=rng_a)
        reservoir.extend(stream)

        reference = []
        for index, value in enumerate(stream):
            if index < capacity:
                reference.append(value)
                continue
            slot = rng_b.randrange(index + 1)
            if slot < capacity:
                reference[slot] = value
        assert reservoir.values == reference

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            ReservoirSample(0)
