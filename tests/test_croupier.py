"""Unit and small-integration tests for the Croupier protocol component."""

import pytest

from repro.core.config import CroupierConfig
from repro.core.croupier import Croupier
from repro.core.messages import ShuffleRequest, ShuffleResponse
from repro.errors import ConfigurationError


def build_croupier(hosts, public=True, **config_kwargs):
    config = CroupierConfig(start_delay_max_ms=0.0, round_jitter_ms=0.0, **config_kwargs)
    host = hosts.public_host() if public else hosts.private_host()
    return Croupier(host, config)


class TestConfig:
    def test_defaults_match_paper(self):
        config = CroupierConfig()
        assert config.view_size == 10
        assert config.shuffle_size == 5
        assert config.round_ms == 1000.0
        assert config.local_history_alpha == 25
        assert config.neighbour_history_gamma == 50
        assert config.max_estimates_per_message == 10
        assert config.estimate_entry_bytes == 5

    def test_window_presets(self):
        small = CroupierConfig.small_windows()
        medium = CroupierConfig.medium_windows()
        large = CroupierConfig.large_windows()
        assert (small.local_history_alpha, small.neighbour_history_gamma) == (10, 25)
        assert (medium.local_history_alpha, medium.neighbour_history_gamma) == (25, 50)
        assert (large.local_history_alpha, large.neighbour_history_gamma) == (100, 250)

    def test_validation_errors(self):
        with pytest.raises(ConfigurationError):
            CroupierConfig(local_history_alpha=0).validate()
        with pytest.raises(ConfigurationError):
            CroupierConfig(neighbour_history_gamma=-1).validate()
        with pytest.raises(ConfigurationError):
            CroupierConfig(shuffle_size=20, view_size=10).validate()
        with pytest.raises(ConfigurationError):
            CroupierConfig(pending_shuffle_timeout_rounds=0).validate()


class TestInitialisation:
    def test_initialize_view_separates_classes(self, sim, hosts):
        croupier = build_croupier(hosts)
        seeds = [hosts.public_host().address for _ in range(3)]
        seeds += [hosts.private_host().address for _ in range(2)]
        croupier.initialize_view(seeds)
        assert len(croupier.public_view) == 3
        assert len(croupier.private_view) == 2

    def test_initialize_view_skips_self(self, sim, hosts):
        croupier = build_croupier(hosts)
        croupier.initialize_view([croupier.address])
        assert len(croupier.public_view) == 0

    def test_estimator_class_follows_nat_type(self, sim, hosts):
        assert build_croupier(hosts, public=True).estimator.is_public
        assert not build_croupier(hosts, public=False).estimator.is_public


class TestRoundBehaviour:
    def test_round_sends_request_to_public_node(self, sim, hosts):
        a = build_croupier(hosts)
        b = build_croupier(hosts)
        a.initialize_view([b.address])
        b.initialize_view([a.address])
        a.start()
        b.start()
        sim.run(until=1_500)
        assert b.stats.shuffle_requests_handled >= 1
        assert a.stats.shuffle_responses_received >= 1

    def test_empty_public_view_skips_round(self, sim, hosts):
        lonely = build_croupier(hosts)
        lonely.start()
        sim.run(until=3_500)
        assert lonely.stats.rounds >= 3
        assert lonely.stats.rounds_skipped_empty_view == lonely.stats.rounds
        assert lonely.stats.shuffles_initiated == 0

    def test_partner_removed_from_view_after_selection(self, sim, hosts):
        a = build_croupier(hosts)
        partner = hosts.public_host().address
        a.initialize_view([partner])
        a.start()
        sim.run(until=1_200)
        assert partner.node_id not in a.public_view

    def test_private_node_initiates_but_never_handles_requests(self, sim, hosts):
        publics = [build_croupier(hosts, public=True) for _ in range(3)]
        private = build_croupier(hosts, public=False)
        public_addresses = [p.address for p in publics]
        for public in publics:
            public.initialize_view(
                [a for a in public_addresses if a.node_id != public.address.node_id]
            )
            public.start()
        private.initialize_view(public_addresses)
        private.start()
        sim.run(until=6_500)
        assert private.stats.shuffles_initiated >= 3
        assert private.stats.shuffle_requests_handled == 0
        assert sum(p.stats.shuffle_requests_handled for p in publics) >= 3

    def test_views_converge_and_exchange_descriptors(self, sim, hosts):
        nodes = [build_croupier(hosts) for _ in range(4)]
        nodes += [build_croupier(hosts, public=False) for _ in range(4)]
        publics = [n.address for n in nodes if n.address.is_public]
        for node in nodes:
            node.initialize_view([a for a in publics if a.node_id != node.address.node_id])
            node.start()
        sim.run(until=20_000)
        # After 20 rounds every node should know at least one private node.
        private_known = sum(1 for n in nodes if len(n.private_view) > 0)
        assert private_known >= 6

    def test_pending_shuffles_expire(self, sim, hosts):
        a = build_croupier(hosts, pending_shuffle_timeout_rounds=2)
        dead_partner = hosts.public_host()
        dead_partner.kill()
        a.initialize_view([dead_partner.address])
        a.start()
        sim.run(until=6_000)
        assert a.pending_shuffles == 0


class TestHandlers:
    def test_misdirected_request_counted_and_ignored(self, sim, hosts):
        private = build_croupier(hosts, public=False)
        public = build_croupier(hosts, public=True)
        private.start()
        public.start()
        # Force-deliver a shuffle request to a private node (stale descriptor case).
        request = ShuffleRequest(sender=public.self_descriptor())
        from repro.simulator.message import Packet

        packet = Packet(
            source=public.self_endpoint,
            destination=private.self_endpoint,
            message=request,
        )
        private.handle_packet(packet)
        assert private.stats.extra.get("misdirected_requests") == 1

    def test_request_handler_counts_hits_by_sender_class(self, sim, hosts):
        croupier = build_croupier(hosts)
        croupier.start()
        public_sender = build_croupier(hosts)
        private_sender = build_croupier(hosts, public=False)
        from repro.simulator.message import Packet

        for sender in (public_sender, private_sender):
            request = ShuffleRequest(sender=sender.self_descriptor())
            croupier.handle_packet(
                Packet(
                    source=sender.self_endpoint,
                    destination=croupier.self_endpoint,
                    message=request,
                )
            )
        assert croupier.estimator.current_round_hits == (1, 1)

    def test_response_merges_received_descriptors(self, sim, hosts):
        croupier = build_croupier(hosts)
        croupier.start()
        other = build_croupier(hosts)
        newcomer = hosts.public_host().address
        from repro.membership.descriptor import NodeDescriptor
        from repro.simulator.message import Packet

        response = ShuffleResponse(
            sender=other.self_descriptor(),
            public_descriptors=(NodeDescriptor(address=newcomer, age=0),),
        )
        croupier.handle_packet(
            Packet(
                source=other.self_endpoint,
                destination=croupier.self_endpoint,
                message=response,
            )
        )
        assert newcomer.node_id in croupier.public_view


class TestSamplingApi:
    def test_sample_returns_none_with_empty_views(self, sim, hosts):
        croupier = build_croupier(hosts)
        assert croupier.sample() is None

    def test_sample_many_counts(self, sim, hosts):
        croupier = build_croupier(hosts)
        croupier.initialize_view([hosts.public_host().address for _ in range(3)])
        samples = croupier.sample_many(10)
        assert len(samples) == 10
        assert croupier.stats.samples_served == 10

    def test_neighbor_addresses_cover_both_views(self, sim, hosts):
        croupier = build_croupier(hosts)
        croupier.initialize_view(
            [hosts.public_host().address, hosts.private_host().address]
        )
        neighbours = croupier.neighbor_addresses()
        assert len(neighbours) == 2
        assert {n.is_public for n in neighbours} == {True, False}

    def test_view_sizes_and_estimated_ratio_accessors(self, sim, hosts):
        croupier = build_croupier(hosts)
        assert croupier.view_sizes() == (0, 0)
        assert croupier.estimated_ratio() is None


class TestMessageSizes:
    def test_shuffle_message_size_accounts_descriptors_and_estimates(self, sim, hosts):
        croupier = build_croupier(hosts)
        other = build_croupier(hosts)
        from repro.core.estimator import RatioEstimate

        request = ShuffleRequest(
            sender=croupier.self_descriptor(),
            public_descriptors=(other.self_descriptor(),),
            private_descriptors=(),
            estimates=(RatioEstimate(1, 0.2), RatioEstimate(2, 0.3)),
            sender_estimate=RatioEstimate(3, 0.25),
        )
        expected_payload = 12 + 12 + 3 * 5
        assert request.payload_size() == expected_payload
        assert request.wire_size == expected_payload + 28
        assert request.descriptor_count == 1

    def test_estimate_overhead_bounded_to_fifty_bytes(self):
        """Paper: at most 10 estimates x 5 bytes = 50 bytes of estimation overhead."""
        from repro.core.estimator import RatioEstimate

        estimates = tuple(RatioEstimate(i, 0.2) for i in range(10))
        assert sum(e.wire_size for e in estimates) == 50
