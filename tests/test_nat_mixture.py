"""Tests for the NAT-realism layer: NAT mixtures, the ``nat_mixture``/``upnp_fraction``
matrix axes, the per-NAT-type metric breakdown, scenario snapshots (``clone``), the
per-worker scenario-reuse cache and the Kolmogorov–Smirnov histogram gate."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError, ExperimentError
from repro.experiments.matrix import (
    DEFAULT_NAT_MIXTURE,
    DEFAULT_UPNP_FRACTION,
    CellContext,
    CellSpec,
    MatrixSpec,
    run_cell,
)
from repro.experiments.report import diff_aggregates, ks_distance
from repro.experiments.runner import ScenarioReuse, aggregate_json_bytes, run_matrix
from repro.membership.capabilities import RatioEstimating
from repro.nat.mixture import NAT_MIXTURES, NatMixture, get_mixture
from repro.nat.types import NAMED_PROFILES, NatProfile, profile_name
from repro.workload.scenario import Scenario, ScenarioConfig


class TestNatMixtureType:
    def test_registered_mixtures_cover_paper_distribution(self):
        paper = get_mixture("paper")
        assert set(paper.profile_names()) == set(NAMED_PROFILES)
        # Cone NATs dominate; symmetric is the minority — the measured skew.
        weights = dict(paper.weights)
        assert weights["symmetric"] == min(weights.values())

    def test_unknown_mixture_name_raises(self):
        with pytest.raises(ConfigurationError):
            get_mixture("carrier-grade")

    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigurationError) as excinfo:
            NatMixture.from_weights("bad", {"quantum_nat": 1.0})
        assert "quantum_nat" in str(excinfo.value)

    def test_non_positive_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            NatMixture.from_weights("bad", {"full_cone": 0.0})
        with pytest.raises(ConfigurationError):
            NatMixture.from_weights("bad", {"full_cone": -1.0, "symmetric": 2.0})

    def test_empty_and_duplicate_weights_rejected(self):
        with pytest.raises(ConfigurationError):
            NatMixture(name="bad", weights=())
        with pytest.raises(ConfigurationError):
            NatMixture(name="bad", weights=(("full_cone", 1.0), ("full_cone", 2.0)))

    def test_sampling_is_deterministic_and_normalised(self):
        import random

        mixture = NatMixture.from_weights("t", {"full_cone": 3.0, "symmetric": 1.0})
        draws = [mixture.sample_name(random.Random(4)) for _ in range(5)]
        assert len(set(draws)) == 1  # same RNG state -> same draw
        rng = random.Random(4)
        names = [mixture.sample_name(rng) for _ in range(4000)]
        share = names.count("full_cone") / len(names)
        assert 0.70 < share < 0.80  # 3:1 weights, loose statistical bound

    def test_profile_name_round_trip(self):
        for name, factory in NAMED_PROFILES.items():
            assert profile_name(factory()) == name
        assert profile_name(NatProfile.full_cone(mapping_timeout_ms=5.0)) == "full_cone"


class TestScenarioMixtureSampling:
    def config(self, seed=11):
        return ScenarioConfig(
            seed=seed, latency="constant", nat_mixture=NAT_MIXTURES["paper"]
        )

    def test_same_seed_same_per_gateway_assignment(self):
        first = Scenario(self.config())
        first.populate(n_public=5, n_private=40)
        second = Scenario(self.config())
        second.populate(n_public=5, n_private=40)
        assert first.nat_class_members() == second.nat_class_members()
        by_node_first = {
            h.node_id: h.nat_profile_name for h in first.live_handles()
        }
        by_node_second = {
            h.node_id: h.nat_profile_name for h in second.live_handles()
        }
        assert by_node_first == by_node_second

    def test_different_seed_diverges(self):
        first = Scenario(self.config(seed=11))
        first.populate(n_public=5, n_private=40)
        second = Scenario(self.config(seed=12))
        second.populate(n_public=5, n_private=40)
        assert first.nat_class_members() != second.nat_class_members()

    def test_mixture_produces_heterogeneous_gateways(self):
        scenario = Scenario(self.config())
        scenario.populate(n_public=5, n_private=60)
        classes = scenario.nat_class_members()
        nat_classes = set(classes) - {"public", "upnp"}
        assert len(nat_classes) >= 2  # 60 draws from a 4-way mixture
        assert sum(len(ids) for ids in classes.values()) == 65

    def test_mixture_does_not_perturb_default_runs(self):
        """A mixture-free scenario consumes no mixture randomness: the run is
        bit-identical to one built before the mixture feature existed (the golden
        fingerprint test pins the same property at full scale)."""
        plain = Scenario(ScenarioConfig(seed=3, latency="constant"))
        plain.populate(n_public=4, n_private=12)
        plain.run_rounds(5)
        again = Scenario(ScenarioConfig(seed=3, latency="constant"))
        again.populate(n_public=4, n_private=12)
        again.run_rounds(5)
        assert plain.sim.events_executed == again.sim.events_executed
        assert plain.nat_class_members() == {"public": plain.live_public_ids(),
                                             "restricted_cone": plain.live_private_ids()}


class TestMatrixAxes:
    def test_default_axis_values_keep_cell_keys_stable(self):
        cell = CellSpec(scenario="static", protocol="croupier", size=50, seed_index=0,
                        rounds=6)
        assert cell.nat_mixture == DEFAULT_NAT_MIXTURE
        assert cell.upnp_fraction == DEFAULT_UPNP_FRACTION
        assert "nat_mixture" not in cell.key and "upnp_fraction" not in cell.key
        # The exact legacy key, byte for byte — archived seeds depend on it.
        assert cell.key == (
            "scenario=static;protocol=croupier;size=50;seed=0;rounds=6;public_ratio=0.2"
        )

    def test_swept_axis_values_appear_in_key_and_group(self):
        from repro.experiments.runner import _group_key

        cell = CellSpec(scenario="static", protocol="croupier", size=50, seed_index=1,
                        rounds=6, nat_mixture="paper", upnp_fraction=0.2)
        assert "nat_mixture=paper" in cell.key
        assert "upnp_fraction=0.2" in cell.key
        group = _group_key(cell)
        assert "nat_mixture=paper" in group and "upnp_fraction=0.2" in group
        assert "seed" not in group

    def test_unknown_mixture_and_conflicting_axes_rejected(self):
        bad = CellSpec(scenario="static", protocol="croupier", size=10, seed_index=0,
                       rounds=2, nat_mixture="carrier-grade")
        with pytest.raises(ExperimentError):
            bad.validate()
        conflicting = CellSpec(scenario="static", protocol="croupier", size=10,
                               seed_index=0, rounds=2, nat_mixture="paper",
                               nat_profile="symmetric")
        with pytest.raises(ExperimentError) as excinfo:
            conflicting.validate()
        assert "mixture" in str(excinfo.value)
        with pytest.raises(ExperimentError):
            CellSpec(scenario="static", protocol="croupier", size=10, seed_index=0,
                     rounds=2, upnp_fraction=1.5).validate()

    def test_axes_expand_the_grid(self):
        spec = MatrixSpec(
            scenarios=("static",), protocols=("croupier",), sizes=(30,), seeds=1,
            rounds=3, latency="constant",
            nat_mixtures=("none", "paper"), upnp_fractions=(0.0, 0.2),
        )
        cells = spec.validate()
        assert len(cells) == 4
        assert {(c.nat_mixture, c.upnp_fraction) for c in cells} == {
            ("none", 0.0), ("none", 0.2), ("paper", 0.0), ("paper", 0.2)
        }
        assert "nat_mixtures" in spec.describe()

    def test_axis_values_reach_the_scenario_config(self):
        cell = CellSpec(scenario="static", protocol="croupier", size=20, seed_index=0,
                        rounds=2, nat_mixture="paper", upnp_fraction=0.3)
        config = CellContext(cell=cell, seed=1, latency="constant").scenario_config()
        assert config.nat_mixture is NAT_MIXTURES["paper"]
        assert config.upnp_fraction == 0.3

    def test_upnp_fraction_axis_raises_the_effective_public_ratio(self):
        base = CellSpec(scenario="static", protocol="croupier", size=60, seed_index=0,
                        rounds=4)
        upnp = CellSpec(scenario="static", protocol="croupier", size=60, seed_index=0,
                        rounds=4, upnp_fraction=0.5)
        plain = run_cell(base, root_seed=5, latency="constant")
        helped = run_cell(upnp, root_seed=5, latency="constant")
        assert helped.scalars["true_ratio"] > plain.scalars["true_ratio"]


class TestMixtureMatrixDeterminism:
    def spec(self, workers_unused=None) -> MatrixSpec:
        return MatrixSpec(
            scenarios=("static",),
            protocols=("croupier",),
            sizes=(40,),
            seeds=2,
            rounds=4,
            latency="constant",
            root_seed=13,
            nat_mixtures=("paper",),
            upnp_fractions=(0.0, 0.2),
        )

    def test_aggregate_bytes_identical_across_worker_counts(self):
        sequential = run_matrix(self.spec(), workers=1)
        parallel = run_matrix(self.spec(), workers=3)
        assert not sequential.failed and not parallel.failed
        assert aggregate_json_bytes(sequential) == aggregate_json_bytes(parallel)

    def test_mixture_cells_carry_per_nat_type_breakdown(self):
        run = run_matrix(self.spec(), workers=1)
        payload = run.results[0].payload
        breakdown = [name for name in payload.histograms if name.startswith("in_degree_")]
        assert breakdown  # at least one NAT class beyond the overall histogram
        assert "in_degree_public" in payload.histograms
        assert any(name in payload.scalars for name in
                   ("indeg_mean_restricted_cone", "indeg_mean_symmetric",
                    "indeg_mean_port_restricted_cone", "indeg_mean_full_cone"))
        # Per-class histograms partition the overall one.
        overall = sum(payload.histograms["in_degree"].values())
        split = sum(
            sum(h.values()) for name, h in payload.histograms.items()
            if name.startswith("in_degree_")
        )
        assert split == overall

    def test_default_cells_carry_no_breakdown(self):
        cell = CellSpec(scenario="static", protocol="croupier", size=40, seed_index=0,
                        rounds=4)
        payload = run_cell(cell, root_seed=13, latency="constant")
        assert list(payload.histograms) == ["in_degree"]


class TestScenarioReuse:
    def test_pss_config_prototype_is_shared(self):
        reuse = ScenarioReuse()
        built = []

        def build():
            built.append(object())
            return built[-1]

        first = reuse.pss_config(("croupier", 10, 25), build)
        second = reuse.pss_config(("croupier", 10, 25), build)
        other = reuse.pss_config(("croupier", 100, 250), build)
        assert first is second and first is not other
        assert len(built) == 2 and reuse.config_hits == 1

    def test_snapshot_reuse_is_bit_identical_to_fresh_builds(self):
        reuse = ScenarioReuse()
        recipe = ("croupier", 99, "constant", 0.0, "restricted_cone", "none", 0.0,
                  4, 12, None)

        def build():
            scenario = Scenario(ScenarioConfig(protocol="croupier", seed=99,
                                               latency="constant"))
            scenario.populate(n_public=4, n_private=12)
            return scenario

        outcomes = []
        for _ in range(3):  # 1st: fresh, 2nd: fresh + snapshot, 3rd: clone
            scenario = reuse.populated_scenario(recipe, build)
            scenario.run_rounds(5)
            outcomes.append(
                (scenario.sim.events_executed, scenario.network.packets_sent,
                 [p.estimated_ratio() for p in scenario.services_with(RatioEstimating)])
            )
        assert reuse.snapshot_hits == 1
        assert outcomes[0] == outcomes[1] == outcomes[2]


class TestScenarioClone:
    def test_clone_continues_bit_identically_and_leaves_original_pristine(self):
        original = Scenario(ScenarioConfig(protocol="croupier", seed=9,
                                           latency="constant"))
        original.populate(n_public=4, n_private=12)
        original.run_rounds(5)
        now_before = original.sim.now
        cloned = original.clone()
        cloned.run_rounds(5)
        reference = Scenario(ScenarioConfig(protocol="croupier", seed=9,
                                            latency="constant"))
        reference.populate(n_public=4, n_private=12)
        reference.run_rounds(10)
        assert cloned.sim.events_executed == reference.sim.events_executed
        assert cloned.network.packets_sent == reference.network.packets_sent
        assert (
            [p.estimated_ratio() for p in cloned.services_with(RatioEstimating)]
            == [p.estimated_ratio() for p in reference.services_with(RatioEstimating)]
        )
        assert original.sim.now == now_before  # branching never advances the source

    def test_failure_harness_reuses_one_warmup_per_protocol(self):
        from repro.experiments.catastrophic_failure import run_failure_experiment

        result = run_failure_experiment(
            protocols=("croupier",), failure_fractions=(0.4, 0.6),
            total_nodes=30, warmup_rounds=6, seed=5, latency="constant",
        )
        clusters = result.clusters["croupier"]
        assert set(clusters) == {0.4, 0.6}
        assert all(0.0 <= value <= 1.0 for value in clusters.values())


class TestKsHistogramGate:
    def test_ks_distance_values(self):
        assert ks_distance({0: 5, 1: 5}, {0: 5, 1: 5}) == 0.0
        assert ks_distance({0: 10}, {5: 10}) == 1.0
        assert ks_distance({"0": 5, "1": 5}, {0: 5, 1: 5}) == 0.0  # JSON string bins
        assert ks_distance({0: 5, 1: 5}, {0: 7, 1: 3}) == pytest.approx(0.2)
        assert ks_distance({}, {}) == 0.0
        assert ks_distance({0: 1}, {}) == 1.0

    def aggregate(self) -> dict:
        run = run_matrix(
            MatrixSpec(scenarios=("static",), protocols=("croupier",), sizes=(30,),
                       seeds=1, rounds=4, latency="constant", root_seed=5),
            workers=1,
        )
        return json.loads(aggregate_json_bytes(run).decode("utf-8"))

    def test_self_diff_reports_no_histogram_changes(self):
        aggregate = self.aggregate()
        diff = diff_aggregates(aggregate, aggregate)
        assert not diff.histogram_changes and not diff.has_regressions

    def test_shifted_in_degree_distribution_gates(self):
        old = self.aggregate()
        new = json.loads(json.dumps(old))
        group = next(iter(new["group_histograms"]))
        histogram = new["group_histograms"][group]["in_degree"]
        new["group_histograms"][group]["in_degree"] = {
            str(int(bin_) + 15): count for bin_, count in histogram.items()
        }
        diff = diff_aggregates(old, new)
        assert diff.has_regressions
        assert diff.histogram_regressions[0].name == "in_degree"
        assert diff.histogram_regressions[0].distance > 0.5
        assert "KS distance" in diff.to_text()

    def test_small_drift_is_surfaced_but_does_not_gate(self):
        old = self.aggregate()
        new = json.loads(json.dumps(old))
        group = next(iter(new["group_histograms"]))
        histogram = dict(new["group_histograms"][group]["in_degree"])
        # Move one node to a neighbouring bin: tiny CDF shift, below tolerance.
        bins = sorted(histogram, key=int)
        donor = next(b for b in bins if histogram[b] > 0)
        histogram[donor] -= 1
        target = str(int(donor) + 1)
        histogram[target] = histogram.get(target, 0) + 1
        new["group_histograms"][group]["in_degree"] = histogram
        diff = diff_aggregates(old, new, ks_tolerance=0.1)
        assert diff.histogram_changes and not diff.histogram_regressions
        assert not diff.has_regressions

    def test_disappeared_histogram_is_a_regression(self):
        old = self.aggregate()
        new = json.loads(json.dumps(old))
        group = next(iter(new["group_histograms"]))
        del new["group_histograms"][group]["in_degree"]
        diff = diff_aggregates(old, new)
        assert diff.has_regressions
        assert any(entry.endswith("/in_degree") for entry in diff.missing_histograms)

    def test_cli_ks_tolerance_flag(self, tmp_path, capsys):
        from repro.cli import main

        old = self.aggregate()
        new = json.loads(json.dumps(old))
        group = next(iter(new["group_histograms"]))
        histogram = new["group_histograms"][group]["in_degree"]
        new["group_histograms"][group]["in_degree"] = {
            str(int(bin_) + 15): count for bin_, count in histogram.items()
        }
        old_path = tmp_path / "old.json"
        new_path = tmp_path / "new.json"
        old_path.write_text(json.dumps(old))
        new_path.write_text(json.dumps(new))
        assert main(["report", "--diff", str(old_path), str(new_path)]) == 1
        capsys.readouterr()
        # A KS tolerance above the shift waves the same diff through.
        assert main(["report", "--diff", str(old_path), str(new_path),
                     "--ks-tolerance", "1.0"]) == 0


class TestCliAxes:
    def test_cli_paper_shorthands(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "mx"
        rc = main([
            "matrix", "--scenarios", "static", "--protocols", "croupier",
            "--sizes", "20", "--seeds", "1", "--rounds", "2",
            "--latency", "constant", "--workers", "1",
            "--nat-mixtures", "paper", "--upnp-fractions", "0,0.2",
            "--out", str(out),
        ])
        assert rc == 0
        aggregate = json.loads((out / "matrix_aggregate.json").read_text())
        assert aggregate["spec"]["nat_mixtures"] == ["paper"]
        assert aggregate["spec"]["upnp_fractions"] == [0.0, 0.2]

    def test_cli_rejects_unparsable_upnp_fractions(self):
        from repro.cli import main

        rc = main([
            "matrix", "--scenarios", "static", "--protocols", "croupier",
            "--sizes", "10", "--seeds", "1", "--rounds", "2",
            "--upnp-fractions", "lots",
        ])
        assert rc == 2
