"""Tests for the determinism & invariant linter (``repro.lint`` / ``repro lint``).

Per rule: a positive fixture (the violation fires), a negative fixture (the
disciplined idiom passes) and a suppressed fixture (the inline escape hatch
works). Plus: allowlist round-trip and strict-mode rot audits, JSON schema
stability (``repro-lint-v1`` is a CI surface), CLI exit codes, ``--changed``
against a real throwaway git repo, and the gate that motivates everything —
a repo-wide self-run asserting the tree is clean.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import (
    Allowlist,
    LintError,
    LintReport,
    get_rule,
    rule_ids,
    run_lint,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src" / "repro"


def lint_source(
    tmp_path: Path,
    source: str,
    name: str = "module.py",
    rules=None,
    strict: bool = False,
    allowlist=None,
) -> LintReport:
    """Write ``source`` under ``tmp_path`` (``name`` may carry directories, so a
    fixture can opt into a policy tier by mirroring its path shape) and lint it."""
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    if allowlist is None:
        allowlist = Allowlist.empty()
    return run_lint([path], rules=rules, strict=strict, allowlist=allowlist)


def finding_rules(report: LintReport):
    return [finding.rule for finding in report.sorted_findings()]


# ----------------------------------------------------------------- rng discipline


class TestGlobalRng:
    def test_module_level_call_fires(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            import random

            def pick(items):
                return random.choice(items)
            """,
        )
        assert finding_rules(report) == ["global-rng"]
        assert "derive_seed" in report.findings[0].message

    def test_from_import_fires(self, tmp_path):
        report = lint_source(tmp_path, "from random import shuffle\n")
        assert finding_rules(report) == ["global-rng"]

    def test_injected_stream_passes(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            import random

            def pick(rng: random.Random, items):
                return rng.choice(items)
            """,
        )
        assert report.findings == []

    def test_inline_suppression(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            import random

            def pick(items):
                return random.choice(items)  # repro-lint: allow[global-rng]
            """,
        )
        assert report.findings == []
        assert report.suppressed == 1

    def test_standalone_suppression_covers_next_line(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            import random

            def pick(items):
                # repro-lint: allow[global-rng]
                return random.choice(items)
            """,
        )
        assert report.findings == []
        assert report.suppressed == 1


class TestUnseededRng:
    def test_unseeded_random_fires(self, tmp_path):
        report = lint_source(tmp_path, "import random\nrng = random.Random()\n")
        assert finding_rules(report) == ["unseeded-rng"]

    def test_system_random_fires(self, tmp_path):
        report = lint_source(tmp_path, "import random\nrng = random.SystemRandom()\n")
        assert finding_rules(report) == ["unseeded-rng"]

    def test_seeded_random_passes(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            import random

            def stream(seed: int) -> random.Random:
                return random.Random(seed)
            """,
        )
        assert report.findings == []


class TestGlobalSeed:
    def test_random_seed_fires(self, tmp_path):
        report = lint_source(tmp_path, "import random\nrandom.seed(42)\n")
        assert finding_rules(report) == ["global-seed"]

    def test_numpy_random_fires_once_per_site(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            import numpy as np

            np.random.seed(7)
            """,
        )
        assert finding_rules(report) == ["global-seed"]

    def test_instance_seed_passes(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            import random

            rng = random.Random(3)
            rng.seed(4)
            """,
        )
        assert report.findings == []


# ------------------------------------------------------------- canonical hygiene

#: Path shape that opts a fixture into the canonical-output tier.
CANONICAL_NAME = "repro/workload/timeline.py"


class TestUnsortedJson:
    def test_dumps_without_sort_keys_fires(self, tmp_path):
        report = lint_source(
            tmp_path,
            "import json\n\n\ndef doc(d):\n    return json.dumps(d)\n",
            name=CANONICAL_NAME,
        )
        assert finding_rules(report) == ["unsorted-json"]

    def test_sorted_dumps_passes(self, tmp_path):
        report = lint_source(
            tmp_path,
            "import json\n\n\ndef doc(d):\n    return json.dumps(d, sort_keys=True)\n",
            name=CANONICAL_NAME,
        )
        assert report.findings == []

    def test_non_canonical_module_exempt(self, tmp_path):
        report = lint_source(
            tmp_path, "import json\n\n\ndef doc(d):\n    return json.dumps(d)\n"
        )
        assert report.findings == []


class TestUnsortedIteration:
    def test_set_iteration_fires(self, tmp_path):
        report = lint_source(
            tmp_path,
            "def keys(items):\n    return [k for k in set(items)]\n",
            name=CANONICAL_NAME,
        )
        assert finding_rules(report) == ["unsorted-iteration"]

    def test_listdir_iteration_fires(self, tmp_path):
        report = lint_source(
            tmp_path,
            "import os\n\n\ndef names(d):\n    for n in os.listdir(d):\n        yield n\n",
            name=CANONICAL_NAME,
        )
        assert finding_rules(report) == ["unsorted-iteration"]

    def test_sorted_wrapper_passes(self, tmp_path):
        report = lint_source(
            tmp_path,
            "def keys(items):\n    return [k for k in sorted(set(items))]\n",
            name=CANONICAL_NAME,
        )
        assert report.findings == []


class TestJsonRoundtripCopy:
    def test_roundtrip_fires_anywhere(self, tmp_path):
        report = lint_source(
            tmp_path, "import json\n\n\ndef clone(d):\n    return json.loads(json.dumps(d))\n"
        )
        assert finding_rules(report) == ["json-roundtrip-copy"]
        assert "copy.deepcopy" in report.findings[0].message

    def test_deepcopy_passes(self, tmp_path):
        report = lint_source(
            tmp_path, "import copy\n\n\ndef clone(d):\n    return copy.deepcopy(d)\n"
        )
        assert report.findings == []


# ------------------------------------------------------------------- wall clock


class TestWallClock:
    def test_time_call_fires(self, tmp_path):
        report = lint_source(
            tmp_path, "import time\n\n\ndef stamp():\n    return time.time()\n"
        )
        assert finding_rules(report) == ["wall-clock"]

    def test_aliased_import_normalized(self, tmp_path):
        report = lint_source(
            tmp_path,
            "from time import perf_counter as pc\n\n\ndef stamp():\n    return pc()\n",
        )
        assert finding_rules(report) == ["wall-clock"]
        assert "time.perf_counter" in report.findings[0].message

    def test_uuid4_and_urandom_fire(self, tmp_path):
        report = lint_source(
            tmp_path,
            "import os\nimport uuid\n\ntoken = uuid.uuid4()\nnoise = os.urandom(8)\n",
        )
        assert finding_rules(report) == ["wall-clock", "wall-clock"]

    def test_virtual_clock_passes(self, tmp_path):
        report = lint_source(
            tmp_path, "def stamp(sim):\n    return sim.now()\n"
        )
        assert report.findings == []


# ------------------------------------------------------------------- capability

CAPABILITY_PRELUDE = """\
from repro.membership.capabilities import (
    NatAware,
    OverlaySampling,
    RatioEstimating,
)
from repro.membership.plugin import register_protocol
"""


def capability_source(body: str) -> str:
    """Prelude (already flush-left) + dedented fixture body."""
    return CAPABILITY_PRELUDE + textwrap.dedent(body)


class TestCapabilityConformance:
    def test_overdeclared_capability_fires(self, tmp_path):
        report = lint_source(
            tmp_path,
            capability_source("""
            class Liar(OverlaySampling):
                pass

            register_protocol(
                "liar", Liar, dict,
                capabilities=frozenset({OverlaySampling, RatioEstimating}),
            )
            """),
        )
        assert finding_rules(report) == ["capability-mismatch"]
        assert "RatioEstimating" in report.findings[0].message

    def test_missing_overlay_sampling_fires(self, tmp_path):
        report = lint_source(
            tmp_path,
            capability_source("""
            class NotASampler:
                pass

            register_protocol("broken", NotASampler, dict)
            """),
        )
        assert finding_rules(report) == ["capability-mismatch"]
        assert "OverlaySampling" in report.findings[0].message

    def test_cross_module_underdeclaration_fires(self, tmp_path):
        # Croupier implements RatioEstimating + NatAware one module away; a
        # declaration hiding them must be caught through the import graph.
        report = lint_source(
            tmp_path,
            capability_source("""
            from repro.core.croupier import Croupier

            register_protocol(
                "shadow", Croupier, dict,
                capabilities=frozenset({OverlaySampling}),
            )
            """),
        )
        assert finding_rules(report) == ["capability-mismatch"]
        message = report.findings[0].message
        assert "NatAware" in message and "RatioEstimating" in message

    def test_derived_registration_passes(self, tmp_path):
        report = lint_source(
            tmp_path,
            capability_source("""
            class Honest(OverlaySampling, NatAware):
                pass

            register_protocol(
                "honest", Honest, dict,
                capabilities=frozenset({OverlaySampling, NatAware}),
            )

            class Derived(OverlaySampling):
                pass

            register_protocol("derived", Derived, dict)
            """),
        )
        assert report.findings == []


# ----------------------------------------------------------------------- slots

#: Path shape that opts a fixture into the hot-path slots tier.
SLOTS_NAME = "repro/simulator/message.py"


class TestMissingSlots:
    def test_dictful_class_fires(self, tmp_path):
        report = lint_source(
            tmp_path,
            "class Heavy:\n    def __init__(self):\n        self.x = 1\n",
            name=SLOTS_NAME,
        )
        assert finding_rules(report) == ["missing-slots"]

    def test_slotted_and_exempt_classes_pass(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            import enum
            from dataclasses import dataclass


            class Lean:
                __slots__ = ("x",)


            @dataclass(slots=True)
            class AlsoLean:
                x: int = 0


            class Kind(enum.Enum):
                A = 1


            class BoomError(Exception):
                pass
            """,
            name=SLOTS_NAME,
        )
        assert report.findings == []

    def test_non_hot_path_module_exempt(self, tmp_path):
        report = lint_source(
            tmp_path, "class Heavy:\n    def __init__(self):\n        self.x = 1\n"
        )
        assert report.findings == []


# ----------------------------------------------------- allowlist and strict mode


class TestAllowlist:
    def test_round_trip_absorbs_and_counts(self, tmp_path):
        allow = tmp_path / ".repro-lint-allow"
        allow.write_text(
            "# diagnostics\nwall-clock  module.py  stamp\n"
        )
        report = lint_source(
            tmp_path,
            "import time\n\n\ndef stamp():\n    return time.time()\n",
            allowlist=Allowlist.load(allow),
        )
        assert report.findings == []
        assert report.allowlisted == 1

    def test_scope_mismatch_does_not_absorb(self, tmp_path):
        allow = tmp_path / ".repro-lint-allow"
        allow.write_text("wall-clock  module.py  other_function\n")
        report = lint_source(
            tmp_path,
            "import time\n\n\ndef stamp():\n    return time.time()\n",
            allowlist=Allowlist.load(allow),
        )
        assert finding_rules(report) == ["wall-clock"]

    def test_unused_entry_is_strict_error(self, tmp_path):
        allow = tmp_path / ".repro-lint-allow"
        allow.write_text("wall-clock  nowhere.py  *\n")
        report = lint_source(
            tmp_path, "x = 1\n", strict=True, allowlist=Allowlist.load(allow)
        )
        assert finding_rules(report) == ["unused-allowlist"]

    def test_unknown_rule_in_entry_is_strict_error(self, tmp_path):
        allow = tmp_path / ".repro-lint-allow"
        allow.write_text("no-such-rule  module.py  *\n")
        report = lint_source(
            tmp_path, "x = 1\n", strict=True, allowlist=Allowlist.load(allow)
        )
        assert finding_rules(report) == ["unknown-suppression"]

    def test_malformed_entry_rejected(self, tmp_path):
        allow = tmp_path / ".repro-lint-allow"
        allow.write_text("just-one-field\n")
        with pytest.raises(LintError):
            Allowlist.load(allow)


class TestStrictMode:
    def test_unknown_suppression_is_strict_error(self, tmp_path):
        source = "x = 1  # repro-lint: allow[no-such-rule]\n"
        assert lint_source(tmp_path, source).findings == []
        report = lint_source(tmp_path, source, strict=True)
        assert finding_rules(report) == ["unknown-suppression"]

    def test_unused_suppression_is_strict_error(self, tmp_path):
        source = "x = 1  # repro-lint: allow[global-rng]\n"
        report = lint_source(tmp_path, source, strict=True)
        assert finding_rules(report) == ["unused-suppression"]

    def test_used_suppression_is_clean_in_strict(self, tmp_path):
        report = lint_source(
            tmp_path,
            "import random\nrandom.seed(1)  # repro-lint: allow[global-seed]\n",
            strict=True,
        )
        assert report.findings == []
        assert report.suppressed == 1

    def test_rule_subset_skips_unused_audit(self, tmp_path):
        # A --rules subset legitimately leaves other rules' suppressions idle.
        report = lint_source(
            tmp_path,
            "x = 1  # repro-lint: allow[global-rng]\n",
            rules=["wall-clock"],
            strict=True,
        )
        assert report.findings == []


# ----------------------------------------------------------- output and schema


class TestOutputSchema:
    def test_json_schema_stable(self, tmp_path):
        report = lint_source(
            tmp_path, "import random\nrandom.seed(1)\nrng = random.Random()\n"
        )
        document = json.loads(report.to_json())
        assert document["schema"] == "repro-lint-v1"
        assert set(document) == {
            "schema",
            "rules",
            "files_checked",
            "findings",
            "suppressed",
            "allowlisted",
        }
        assert document["files_checked"] == 1
        assert [f["rule"] for f in document["findings"]] == [
            "global-seed",
            "unseeded-rng",
        ]
        for finding in document["findings"]:
            assert set(finding) == {
                "path",
                "line",
                "col",
                "rule",
                "severity",
                "scope",
                "message",
            }
            assert finding["severity"] == "error"

    def test_findings_sorted_deterministically(self, tmp_path):
        report = lint_source(
            tmp_path,
            "import random\nimport time\n\nb = random.random()\na = time.time()\n",
        )
        ordered = [(f.line, f.rule) for f in report.sorted_findings()]
        assert ordered == sorted(ordered)

    def test_unknown_rule_id_rejected(self, tmp_path):
        with pytest.raises(LintError):
            lint_source(tmp_path, "x = 1\n", rules=["no-such-rule"])

    def test_registry_exposes_docs(self):
        assert "global-rng" in rule_ids()
        rule = get_rule("wall-clock")
        assert rule.description
        assert rule.rationale


# -------------------------------------------------------------------- CLI & repo


class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text("x = 1\n")
        assert main(["lint", str(path)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_deliberate_violation_fails_the_gate(self, tmp_path, capsys):
        # The acceptance scenario: a bare random.random() in a matrix-kind-like
        # module must fail `repro lint` (and therefore the CI gate running it).
        path = tmp_path / "matrix_kind.py"
        path.write_text(
            "import random\n\n\ndef run_cell(context):\n"
            "    return random.random()\n"
        )
        assert main(["lint", str(path)]) == 1
        assert "global-rng" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text("x = 1\n")
        assert main(["lint", "--format", "json", str(path)]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro-lint-v1"

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in rule_ids():
            assert rule_id in out

    def test_rules_subset(self, tmp_path, capsys):
        path = tmp_path / "mixed.py"
        path.write_text("import time\nstamp = time.time()\n")
        assert main(["lint", "--rules", "global-rng", str(path)]) == 0
        assert main(["lint", "--rules", "wall-clock", str(path)]) == 1
        capsys.readouterr()


@pytest.mark.skipif(shutil.which("git") is None, reason="git not available")
class TestChangedMode:
    def test_changed_lints_only_dirty_files(self, tmp_path, capsys, monkeypatch):
        repo = tmp_path / "repo"
        repo.mkdir()
        env = {"GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
               "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t"}

        def git(*args):
            subprocess.run(
                ["git", "-C", str(repo), *args],
                check=True, capture_output=True, env={**env, "PATH": "/usr/bin:/bin"},
            )

        git("init", "-q")
        committed = repo / "committed.py"
        committed.write_text("import time\nstamp = time.time()\n")  # dirty idiom, but committed
        git("add", "committed.py")
        git("commit", "-qm", "seed")
        dirty = repo / "dirty.py"
        dirty.write_text("import random\nvalue = random.random()\n")

        monkeypatch.chdir(repo)
        # Only the uncommitted file is linted: its violation fails the run...
        assert main(["lint", "--changed", "."]) == 1
        out = capsys.readouterr().out
        assert "dirty.py" in out and "committed.py" not in out
        # ...and once it is clean, --changed is green even though the committed
        # file still contains a violation (it is not part of the diff).
        dirty.write_text("x = 1\n")
        assert main(["lint", "--changed", "."]) == 0
        capsys.readouterr()


class TestRepoIsClean:
    def test_repo_self_run_zero_findings_strict(self):
        report = run_lint(
            [SRC],
            strict=True,
            allowlist=Allowlist.load(REPO_ROOT / ".repro-lint-allow"),
            base_dir=REPO_ROOT,
        )
        assert report.findings == [], "\n" + report.to_text()
        assert report.files_checked > 90
        assert report.allowlisted > 0  # the justified diagnostic timers

    def test_protocol_registrations_conform(self):
        # The capability cross-check actually resolves every built-in protocol
        # module (croupier/cyclon/gozar/nylon/arrg) through the import graph.
        protocol_files = [
            SRC / "core" / "croupier.py",
            SRC / "membership" / "cyclon.py",
            SRC / "membership" / "gozar.py",
            SRC / "membership" / "nylon.py",
            SRC / "membership" / "arrg.py",
        ]
        report = run_lint(protocol_files, rules=["capability-mismatch"])
        assert report.findings == []
        assert report.files_checked == 5
