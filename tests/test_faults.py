"""Tests for the fault-tolerance layer: deterministic chaos injection, retry
classification, the watchdog, journal checkpoint/resume byte-parity, degraded
aggregates and the timeline-horizon warning."""

from __future__ import annotations

import json
import time

import pytest

from repro.errors import ExperimentError
from repro.experiments.checkpoint import (
    JOURNAL_SCHEMA,
    JournalWriter,
    load_journal,
    load_resumable,
    spec_digest,
)
from repro.experiments.faults import (
    FaultPlan,
    RetryPolicy,
    payload_digest,
)
from repro.experiments.matrix import (
    MatrixSpec,
    register_scenario,
    unregister_scenario,
)
from repro.experiments.runner import aggregate_json_bytes, run_matrix
from repro.workload.events import ChurnPhase, FailureSpike, JoinBurst
from repro.workload.timeline import Timeline
from repro.workload.scenario import Scenario, ScenarioConfig


def small_spec(**overrides) -> MatrixSpec:
    defaults = dict(
        scenarios=("static",),
        protocols=("croupier", "cyclon"),
        sizes=(50,),
        seeds=2,
        rounds=6,
        latency="constant",
        root_seed=7,
    )
    defaults.update(overrides)
    return MatrixSpec(**defaults)


class TestFaultPlan:
    def test_same_seed_same_injection_schedule(self):
        plan = FaultPlan(seed=3, crash_rate=0.3, hang_rate=0.2, corrupt_rate=0.3)
        cells = small_spec().cells()
        schedule = [plan.draw(cell.key, 0) for cell in cells]
        again = [
            FaultPlan(seed=3, crash_rate=0.3, hang_rate=0.2, corrupt_rate=0.3).draw(
                cell.key, 0
            )
            for cell in cells
        ]
        assert schedule == again

    def test_different_seed_different_schedule(self):
        cells = [cell.key for cell in small_spec(seeds=8).cells()]
        plans = [
            FaultPlan(seed=s, crash_rate=0.3, hang_rate=0.3, corrupt_rate=0.3)
            for s in (1, 2)
        ]
        assert [plans[0].draw(k, 0) for k in cells] != [
            plans[1].draw(k, 0) for k in cells
        ]

    def test_max_faults_per_cell_caps_injection(self):
        # Rates sum to 1.0: attempt 0 always faults, later attempts never do — the
        # property that guarantees chaos runs recover and stay byte-comparable.
        plan = FaultPlan(seed=1, crash_rate=0.5, hang_rate=0.25, corrupt_rate=0.25)
        for cell in small_spec().cells():
            assert plan.draw(cell.key, 0) is not None
            assert plan.draw(cell.key, 1) is None

    def test_parse_compact_and_json_forms(self, tmp_path):
        plan = FaultPlan.parse("seed=7,crash=0.2,hang=0.1,corrupt=0.2")
        assert plan == FaultPlan(seed=7, crash_rate=0.2, hang_rate=0.1,
                                 corrupt_rate=0.2)
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan.to_json_dict()))
        assert FaultPlan.parse(str(path)) == plan

    def test_parse_rejects_bad_input(self):
        with pytest.raises(ExperimentError):
            FaultPlan.parse("crash=0.9,hang=0.9")  # rates sum past 1.0
        with pytest.raises(ExperimentError):
            FaultPlan.parse("nope=1")
        with pytest.raises(ExperimentError):
            FaultPlan.parse("missing-file.json")

    def test_corruption_changes_payload_but_not_digest_source(self):
        payload = {"scalars": {"a": 1.0}, "histograms": {}, "series": {}}
        digest = payload_digest(payload)
        corrupted = FaultPlan(seed=0, corrupt_rate=1.0).corrupt_payload(payload)
        assert corrupted != payload
        assert payload_digest(corrupted) != digest
        assert payload_digest(payload) == digest  # original untouched


class TestRetryPolicy:
    def test_backoff_is_deterministic_capped_and_jittered(self):
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.1, max_delay_s=0.3,
                             jitter=0.5)
        delays = [policy.delay_s(7, "cell-key", attempt) for attempt in (1, 2, 3, 4)]
        assert delays == [policy.delay_s(7, "cell-key", a) for a in (1, 2, 3, 4)]
        # Exponential until the cap, never past cap * (1 + jitter).
        assert delays[0] < delays[1]
        assert all(d <= 0.3 * 1.5 for d in delays)
        # Jitter streams differ per cell.
        assert policy.delay_s(7, "other-key", 1) != delays[0]

    def test_validation(self):
        with pytest.raises(ExperimentError):
            RetryPolicy(max_attempts=0).validate()
        with pytest.raises(ExperimentError):
            RetryPolicy(jitter=-1).validate()


class TestDeterministicFailuresNotRetried:
    def test_cell_exception_fails_once_without_retry(self):
        calls_path = []

        def exploding_cell(ctx):
            raise RuntimeError("deterministic boom")

        register_scenario("det-boom", exploding_cell, description="test crasher")
        try:
            spec = small_spec(scenarios=("det-boom",), protocols=("croupier",),
                              seeds=1)
            run = run_matrix(spec, workers=2, retry=RetryPolicy(max_attempts=4))
        finally:
            unregister_scenario("det-boom")
        (result,) = run.results
        assert result.status == "failed"
        assert result.attempts == 1  # an exception is deterministic: never retried
        assert run.retries == 0
        assert "RuntimeError" in result.error


class TestChaosRecovery:
    def test_pool_chaos_run_is_byte_identical_to_fault_free(self):
        spec = small_spec()
        baseline = run_matrix(spec, workers=1)
        # crash + corruption chaos (no hangs: keeps the test fast; the watchdog has
        # its own test below); every cell faults once, so retries must all recover.
        plan = FaultPlan(seed=5, crash_rate=0.5, corrupt_rate=0.5)
        chaos = run_matrix(spec, workers=2, fault_plan=plan,
                           retry=RetryPolicy(max_attempts=3, base_delay_s=0.01))
        assert not chaos.failed and not chaos.degraded
        assert chaos.retries == len(spec.cells())
        assert aggregate_json_bytes(chaos) == aggregate_json_bytes(baseline)
        # Enriched diagnostics stay out of the aggregate bytes.
        text = json.dumps(chaos.aggregate)
        assert "pid" not in text and "wall" not in text and "attempts" not in text

    def test_sequential_chaos_run_is_byte_identical_too(self):
        spec = small_spec()
        baseline = run_matrix(spec, workers=1)
        plan = FaultPlan(seed=5, crash_rate=0.4, hang_rate=0.3, corrupt_rate=0.3)
        chaos = run_matrix(spec, workers=1, fault_plan=plan,
                           retry=RetryPolicy(max_attempts=3, base_delay_s=0.01))
        assert not chaos.failed and not chaos.degraded
        assert chaos.retries == len(spec.cells())
        assert aggregate_json_bytes(chaos) == aggregate_json_bytes(baseline)


class TestWatchdogAndDegradation:
    def test_hung_cell_is_killed_retried_and_degraded(self):
        def sleepy_cell(ctx):
            time.sleep(60.0)
            return {"slept": 1.0}

        register_scenario("sleepy", sleepy_cell, description="test hanger")
        try:
            # Two cells: a single-cell matrix runs sequentially, where no watchdog
            # can exist (the process cannot kill itself).
            spec = small_spec(scenarios=("sleepy",), protocols=("croupier",), seeds=2)
            started = time.monotonic()
            run = run_matrix(spec, workers=2, cell_timeout_s=0.5,
                             retry=RetryPolicy(max_attempts=2, base_delay_s=0.01))
            elapsed = time.monotonic() - started
        finally:
            unregister_scenario("sleepy")
        assert elapsed < 30.0  # the watchdog cut every 60s sleep short
        aggregate = run.aggregate
        for result in run.results:
            assert result.status == "degraded"
            assert result.attempts == 2
            assert result.faults == ("timeout", "timeout")
            assert aggregate["degraded"][result.key] == {
                "attempts": 2,
                "faults": ["timeout", "timeout"],
            }
        assert aggregate["failed"] == []  # degraded is not deterministic failure

    def test_fault_free_aggregate_has_no_degraded_section(self):
        run = run_matrix(small_spec(protocols=("croupier",), seeds=1), workers=1)
        assert "degraded" not in run.aggregate


class TestJournalResume:
    def test_killed_run_resumes_byte_identically(self, tmp_path):
        spec = small_spec()
        baseline = run_matrix(spec, workers=1)
        journal = tmp_path / "journal.jsonl"
        run_matrix(spec, workers=2, journal_path=journal)

        # Simulate a kill after two cells, mid-write of the third record.
        lines = journal.read_text().splitlines()
        assert len(lines) == 1 + len(spec.cells())
        journal.write_text("\n".join(lines[:3]) + "\n" + lines[3][: len(lines[3]) // 2])

        resumed = run_matrix(spec, workers=2, journal_path=journal,
                             resume_from=journal)
        assert resumed.resumed == 2  # the truncated third record re-ran
        assert aggregate_json_bytes(resumed) == aggregate_json_bytes(baseline)
        # The journal is complete and readable again after the in-place resume.
        header, cells = load_journal(journal)
        assert header["schema"] == JOURNAL_SCHEMA
        assert len(cells) == len(spec.cells())

    def test_full_journal_replays_every_cell(self, tmp_path):
        spec = small_spec(protocols=("croupier",))
        journal = tmp_path / "journal.jsonl"
        first = run_matrix(spec, workers=1, journal_path=journal)
        replay = run_matrix(spec, workers=1, resume_from=journal)
        assert replay.resumed == len(spec.cells())
        assert aggregate_json_bytes(replay) == aggregate_json_bytes(first)

    def test_resume_rejects_a_different_spec(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        run_matrix(small_spec(protocols=("croupier",)), workers=1,
                   journal_path=journal)
        other = small_spec(protocols=("croupier",), rounds=8)
        with pytest.raises(ExperimentError):
            run_matrix(other, resume_from=journal)

    def test_journal_records_carry_execution_diagnostics(self, tmp_path):
        spec = small_spec(protocols=("croupier",), seeds=1)
        journal = tmp_path / "journal.jsonl"
        run_matrix(spec, workers=1, journal_path=journal)
        _, cells = load_journal(journal)
        (record,) = cells.values()
        assert record["status"] == "ok"
        assert record["attempts"] == 1 and record["faults"] == []
        assert isinstance(record["pid"], int)
        assert record["duration_s"] > 0
        assert payload_digest(record["payload"]) == record["payload_digest"]

    def test_failed_cells_are_terminal_on_resume(self, tmp_path):
        register_scenario("journal-boom",
                          lambda ctx: (_ for _ in ()).throw(RuntimeError("boom")),
                          description="test crasher")
        try:
            spec = small_spec(scenarios=("journal-boom",), protocols=("croupier",),
                              seeds=1)
            journal = tmp_path / "journal.jsonl"
            run_matrix(spec, workers=1, journal_path=journal)
            resumable = load_resumable(journal, spec)
            assert len(resumable) == 1  # deterministic failures replay, not re-run
            resumed = run_matrix(spec, workers=1, resume_from=journal)
            assert resumed.resumed == 1 and len(resumed.failed) == 1
        finally:
            unregister_scenario("journal-boom")

    def test_spec_digest_changes_with_the_grid(self):
        assert spec_digest(small_spec()) != spec_digest(small_spec(rounds=8))
        assert spec_digest(small_spec()) == spec_digest(small_spec())

    def test_writer_truncates_stale_journal_on_fresh_run(self, tmp_path):
        spec = small_spec(protocols=("croupier",), seeds=1)
        journal = tmp_path / "journal.jsonl"
        journal.write_text('{"schema": "stale"}\n')
        with JournalWriter(journal, spec, total_cells=1):
            pass
        header, _ = load_journal(journal)
        assert header["schema"] == JOURNAL_SCHEMA


class TestHeartbeat:
    def test_heartbeat_emits_progress_lines(self):
        import io

        stream = io.StringIO()
        spec = small_spec(protocols=("croupier",))
        run_matrix(spec, workers=1, heartbeat_s=1e-6, heartbeat_stream=stream)
        output = stream.getvalue()
        assert "[matrix]" in output
        assert "cells" in output and "eta" in output


class TestHorizonWarning:
    def _scenario(self):
        scenario = Scenario(ScenarioConfig(protocol="croupier", seed=1,
                                           latency="constant"))
        scenario.populate(n_public=5, n_private=5)
        return scenario

    def test_event_beyond_horizon_warns(self):
        timeline = Timeline((ChurnPhase(fraction_per_round=0.01, start_round=61.0),))
        with pytest.warns(UserWarning, match="never fire"):
            timeline.install(self._scenario(), horizon_rounds=30)

    def test_scheduled_event_at_exact_horizon_warns(self):
        # A churn process starting exactly at the last boundary never acts.
        timeline = Timeline((JoinBurst(at_round=30.0, fraction=0.5),))
        with pytest.warns(UserWarning, match="never fire"):
            timeline.install(self._scenario(), horizon_rounds=30)

    def test_boundary_event_at_exact_horizon_is_fine(self):
        import warnings

        # fire_boundary(up_to_round=horizon) is inclusive, so this event DOES fire.
        timeline = Timeline((FailureSpike(at_round=30.0, fraction=0.5),))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            timeline.install(self._scenario(), horizon_rounds=30)

    def test_no_horizon_no_warning(self):
        import warnings

        timeline = Timeline((ChurnPhase(fraction_per_round=0.01, start_round=61.0),))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            timeline.install(self._scenario())
