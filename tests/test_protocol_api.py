"""Tests for the protocol plugin API: capability conformance across all five
registered protocols, typed metric payloads (JSON round trip, matrix parity with
histograms), the deployment axes, the capability-raising Scenario shims and the
aggregate diff gate."""

from __future__ import annotations

import json

import pytest

from repro.errors import CapabilityError, ConfigurationError, ExperimentError
from repro.experiments.matrix import (
    DEFAULT_NAT_PROFILE,
    NAT_PROFILES,
    PAPER_NAT_PROFILES,
    CellSpec,
    MatrixSpec,
    run_cell,
)
from repro.experiments.report import diff_aggregates
from repro.experiments.runner import aggregate_json_bytes, run_matrix
from repro.membership.capabilities import (
    CAPABILITIES,
    NatAware,
    OverlaySampling,
    RatioEstimating,
    capability_name,
)
from repro.membership.plugin import (
    ProtocolPlugin,
    all_plugins,
    get_plugin,
    protocol_names,
    register_protocol,
    unregister_protocol,
)
from repro.metrics.payload import MetricPayload, histogram_statistics, merge_histograms
from repro.metrics.probes import collect_ratio_estimates
from repro.workload.scenario import Scenario, ScenarioConfig

ALL_PROTOCOLS = ("croupier", "cyclon", "gozar", "nylon", "arrg")

#: The capability matrix the paper's protocol comparison implies.
EXPECTED_CAPABILITIES = {
    "croupier": {"OverlaySampling", "RatioEstimating", "NatAware"},
    "cyclon": {"OverlaySampling"},
    "gozar": {"OverlaySampling", "NatAware"},
    "nylon": {"OverlaySampling", "NatAware"},
    "arrg": {"OverlaySampling"},
}


class TestPluginRegistry:
    def test_all_five_protocols_registered(self):
        assert set(ALL_PROTOCOLS) <= set(protocol_names())

    def test_unknown_protocol_raises(self):
        with pytest.raises(ConfigurationError):
            get_plugin("chord")

    def test_duplicate_registration_rejected(self):
        plugin = get_plugin("croupier")
        with pytest.raises(ConfigurationError):
            register_protocol("croupier", plugin.factory, plugin.config_cls)

    def test_register_and_unregister_custom_plugin(self):
        cyclon = get_plugin("cyclon")
        register_protocol("cyclon-variant", cyclon.factory, cyclon.config_cls,
                          description="test-only alias")
        try:
            assert get_plugin("cyclon-variant").supports(OverlaySampling)
        finally:
            unregister_protocol("cyclon-variant")
        assert "cyclon-variant" not in protocol_names()


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
class TestCapabilityConformance:
    def test_advertised_capabilities_match_component(self, protocol, hosts):
        plugin = get_plugin(protocol)
        assert {capability_name(c) for c in plugin.capabilities} == (
            EXPECTED_CAPABILITIES[protocol]
        )
        component = plugin.create(hosts.public_host())
        for capability in CAPABILITIES:
            assert isinstance(component, capability) == plugin.supports(capability)

    def test_default_config_is_typed_and_valid(self, protocol):
        plugin = get_plugin(protocol)
        config = plugin.default_config()
        assert isinstance(config, plugin.config_cls)
        config.validate()

    def test_nat_aware_components_name_their_strategy(self, protocol, hosts):
        plugin = get_plugin(protocol)
        component = plugin.create(hosts.public_host())
        if plugin.supports(NatAware):
            assert component.private_peer_strategy() in (
                "croupier-indirection", "relay", "hole-punching",
            )
        else:
            assert not hasattr(component, "private_peer_strategy") or not isinstance(
                component, NatAware
            )

    def test_sample_uniformity_smoke(self, protocol):
        """Samples drawn through the capability API cover a healthy spread of live
        nodes — a smoke test of the PSS contract, not a statistical proof."""
        scenario = Scenario(ScenarioConfig(protocol=protocol, seed=9, latency="constant"))
        if scenario.plugin.nat_free_baseline:
            scenario.populate(n_public=30, n_private=0)
        else:
            scenario.populate(n_public=8, n_private=22)
        scenario.run_rounds(15)
        live_ids = {h.node_id for h in scenario.live_handles()}
        samplers = scenario.services_with(OverlaySampling)
        assert len(samplers) == len(live_ids)
        sampled_ids = set()
        for service in samplers[:10]:
            for address in service.sample_many(20):
                assert address.node_id in live_ids
                sampled_ids.add(address.node_id)
        # 10 samplers x 20 draws over 30 nodes: a working PSS reaches well beyond
        # its own view size.
        assert len(sampled_ids) >= 10


class TestDeprecatedShimsRemoved:
    """The PR-3 transition shims are gone: the capability API is the only protocol
    access path, and the probes module is the one place estimates are collected."""

    def test_pre_plugin_accessors_are_gone(self):
        scenario = Scenario(ScenarioConfig(protocol="croupier", seed=2, latency="constant"))
        for removed in ("ratio_estimates", "croupiers", "croupier_instances"):
            assert not hasattr(scenario, removed)

    def test_protocols_dict_snapshot_is_gone(self):
        import repro.workload.scenario as scenario_module

        assert not hasattr(scenario_module, "PROTOCOLS")

    def test_collect_ratio_estimates_matches_capability_api(self):
        scenario = Scenario(ScenarioConfig(protocol="croupier", seed=2, latency="constant"))
        scenario.populate(n_public=4, n_private=8)
        scenario.run_rounds(5)
        estimates = collect_ratio_estimates(scenario, min_rounds=2)
        assert len(estimates) == 12
        assert estimates == [
            pss.estimated_ratio()
            for pss in scenario.services_with(RatioEstimating)
            if pss.current_round >= 2
        ]

    def test_collect_ratio_estimates_is_non_raising(self):
        scenario = Scenario(ScenarioConfig(protocol="cyclon", seed=2, latency="constant"))
        scenario.populate(n_public=6, n_private=0)
        scenario.run_rounds(4)
        assert collect_ratio_estimates(scenario) == []


class TestMetricPayload:
    def payload(self) -> MetricPayload:
        payload = MetricPayload()
        payload.set_scalar("live_nodes", 50)
        payload.set_scalar("est_err_avg_final", 0.0123)
        payload.set_histogram("in_degree", {0: 3, 2: 10, 7: 1})
        payload.set_series("est_err_avg", [(1000.0, 0.5), (2000.0, 0.25)])
        return payload

    def test_json_round_trip_is_exact(self):
        payload = self.payload()
        through_json = json.loads(json.dumps(payload.to_json_dict(), sort_keys=True))
        restored = MetricPayload.from_json_dict(through_json)
        assert restored == payload
        # Histogram bins come back as ints, series points as float tuples.
        assert all(isinstance(b, int) for b in restored.histograms["in_degree"])
        assert restored.series["est_err_avg"][0] == (1000.0, 0.5)

    def test_merge_rejects_duplicate_names(self):
        with pytest.raises(ExperimentError):
            self.payload().merge(MetricPayload.from_scalars({"live_nodes": 1}))

    def test_from_scalars_adapts_legacy_dicts(self):
        payload = MetricPayload.from_scalars({"a": 1})
        assert payload.scalars == {"a": 1.0}
        assert not payload.histograms and not payload.series

    def test_merge_histograms_and_statistics(self):
        merged = merge_histograms([{0: 1, 2: 3}, {2: 2, 5: 1}])
        assert merged == {0: 1, 2: 5, 5: 1}
        stats = histogram_statistics(merged)
        assert stats["count"] == 7
        assert stats["max"] == 5.0
        assert stats["mean"] == pytest.approx((0 * 1 + 2 * 5 + 5 * 1) / 7)


class TestPayloadMatrix:
    def randomness_spec(self, workers_protocols=ALL_PROTOCOLS, seeds=2) -> MatrixSpec:
        return MatrixSpec(
            scenarios=("randomness",),
            protocols=workers_protocols,
            sizes=(40,),
            seeds=seeds,
            rounds=6,
            latency="constant",
            root_seed=11,
        )

    def test_all_five_protocols_produce_histogram_payloads(self):
        run = run_matrix(self.randomness_spec(seeds=1), workers=1)
        assert not run.failed
        for result in run.results:
            assert "in_degree" in result.payload.histograms
            assert "path_length" in result.payload.series
            assert result.metrics["live_nodes"] == 40.0
        by_protocol = {r.cell.protocol: r.payload for r in run.results}
        # Capability-gated probes: only Croupier cells carry estimation metrics.
        assert "est_mean" in by_protocol["croupier"].scalars
        for protocol in ("cyclon", "gozar", "nylon", "arrg"):
            assert "est_mean" not in by_protocol[protocol].scalars

    def test_parallel_aggregate_bytes_identical_with_histograms(self):
        spec = self.randomness_spec()
        sequential = run_matrix(spec, workers=1)
        parallel = run_matrix(spec, workers=4)
        assert not sequential.failed and not parallel.failed
        assert aggregate_json_bytes(sequential) == aggregate_json_bytes(parallel)
        aggregate = sequential.aggregate
        assert aggregate["schema"] == "repro-matrix-aggregate-v2"
        # Group histograms merged the two seeds bin-wise.
        group = next(iter(aggregate["group_histograms"].values()))
        merged_total = sum(group["in_degree"].values())
        assert merged_total == 2 * 40  # every node of both seeds has an in-degree

    def test_history_kind_is_capability_gated(self):
        croupier_cell = CellSpec(
            scenario="history", protocol="croupier", size=30, seed_index=0, rounds=4,
            params=(("alpha", 10), ("gamma", 25)),
        )
        payload = run_cell(croupier_cell, root_seed=3, latency="constant")
        assert "est_err_avg_final" in payload.scalars
        cyclon_cell = CellSpec(
            scenario="history", protocol="cyclon", size=30, seed_index=0, rounds=4,
        )
        with pytest.raises(CapabilityError) as excinfo:
            run_cell(cyclon_cell, root_seed=3, latency="constant")
        assert "RatioEstimating" in str(excinfo.value)


class TestDeploymentAxes:
    def test_default_axes_leave_cell_keys_unchanged(self):
        cell = CellSpec(scenario="static", protocol="croupier", size=50, seed_index=0,
                        rounds=6)
        assert "nat_profile" not in cell.key and "loss_rate" not in cell.key
        swept = CellSpec(scenario="static", protocol="croupier", size=50, seed_index=0,
                         rounds=6, nat_profile="symmetric", loss_rate=0.05)
        assert "nat_profile=symmetric" in swept.key
        assert "loss_rate=0.05" in swept.key

    def test_axes_expand_the_grid(self):
        spec = MatrixSpec(
            scenarios=("static",), protocols=("croupier",), sizes=(30,), seeds=1,
            rounds=3, latency="constant",
            nat_profiles=PAPER_NAT_PROFILES, loss_rates=(0.0, 0.05),
        )
        cells = spec.validate()
        assert len(cells) == len(PAPER_NAT_PROFILES) * 2
        assert {c.nat_profile for c in cells} == set(PAPER_NAT_PROFILES)

    def test_unknown_profile_rejected(self):
        cell = CellSpec(scenario="static", protocol="croupier", size=10, seed_index=0,
                        rounds=2, nat_profile="carrier-grade")
        with pytest.raises(ExperimentError):
            cell.validate()

    def test_axis_values_reach_the_scenario(self):
        cell = CellSpec(scenario="static", protocol="croupier", size=20, seed_index=0,
                        rounds=2, nat_profile="symmetric", loss_rate=0.2)
        from repro.experiments.matrix import CellContext

        config = CellContext(cell=cell, seed=1, latency="constant").scenario_config()
        assert config.loss_rate == 0.2
        assert config.nat_profile == NAT_PROFILES["symmetric"]()
        assert DEFAULT_NAT_PROFILE in NAT_PROFILES


class TestAggregateDiff:
    def aggregate(self) -> dict:
        run = run_matrix(
            MatrixSpec(scenarios=("static",), protocols=("croupier",), sizes=(30,),
                       seeds=1, rounds=4, latency="constant", root_seed=5),
            workers=1,
        )
        return json.loads(aggregate_json_bytes(run).decode("utf-8"))

    def test_self_diff_has_no_regressions(self):
        aggregate = self.aggregate()
        diff = diff_aggregates(aggregate, aggregate)
        assert not diff.changes and not diff.has_regressions

    def test_error_increase_is_a_regression(self):
        old = self.aggregate()
        new = json.loads(json.dumps(old))
        for group in new["groups"].values():
            group["est_err_avg_final"]["mean"] *= 1.5
        diff = diff_aggregates(old, new)
        assert diff.has_regressions
        assert any(c.metric == "est_err_avg_final" for c in diff.regressions)
        # The opposite direction is an improvement, not a regression.
        reverse = diff_aggregates(new, old)
        assert not reverse.has_regressions and reverse.improvements

    def test_disappeared_gated_metric_is_a_regression(self):
        old = self.aggregate()
        new = json.loads(json.dumps(old))
        for group in new["groups"].values():
            group.pop("est_err_avg_final", None)  # gated (lower-is-better) metric
            group.pop("est_mean", None)  # unoriented: reported, but never gates
        diff = diff_aggregates(old, new)
        assert diff.has_regressions
        assert any(m.endswith("/est_err_avg_final") for m in diff.missing_gated_metrics)
        assert not any(m.endswith("/est_mean") for m in diff.missing_gated_metrics)
        assert any(m.endswith("/est_mean") for m in diff.missing_metrics)

    def test_newly_failed_cell_is_a_regression(self):
        old = self.aggregate()
        new = json.loads(json.dumps(old))
        key = next(iter(new["cells"]))
        new["failed"] = [key]
        diff = diff_aggregates(old, new)
        assert diff.has_regressions and diff.newly_failed_cells == [key]

    def test_cli_diff_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        aggregate = self.aggregate()
        same = tmp_path / "same.json"
        same.write_text(json.dumps(aggregate))
        assert main(["report", "--diff", str(same), str(same)]) == 0
        worse_aggregate = json.loads(json.dumps(aggregate))
        for group in worse_aggregate["groups"].values():
            group["est_err_avg_final"]["mean"] *= 2.0
        worse = tmp_path / "worse.json"
        worse.write_text(json.dumps(worse_aggregate))
        assert main(["report", "--diff", str(same), str(worse)]) == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.err


class TestScenarioPluginIntegration:
    def test_scenario_exposes_its_plugin(self):
        scenario = Scenario(ScenarioConfig(protocol="gozar", seed=1, latency="constant"))
        assert isinstance(scenario.plugin, ProtocolPlugin)
        assert scenario.plugin.name == "gozar"
        assert scenario.supports(NatAware) and not scenario.supports(RatioEstimating)

    def test_every_plugin_runs_through_scenario(self):
        for plugin in all_plugins():
            scenario = Scenario(
                ScenarioConfig(protocol=plugin.name, seed=3, latency="constant")
            )
            scenario.populate(n_public=5, n_private=0 if plugin.nat_free_baseline else 5)
            scenario.run_rounds(3)
            assert scenario.live_count() in (5, 10)
            assert len(scenario.overlay_graph()) == scenario.live_count()
