"""Unit tests for the component model and hosts."""

from dataclasses import dataclass

import pytest

from repro.errors import NetworkError, ProtocolError
from repro.net.address import Endpoint
from repro.simulator.component import Component
from repro.simulator.message import Message, Packet


@dataclass
class Ping(Message):
    payload: int = 0

    def payload_size(self) -> int:
        return 4


@dataclass
class Pong(Message):
    payload: int = 0

    def payload_size(self) -> int:
        return 4


class EchoComponent(Component):
    """Replies to Ping with Pong and records everything it sees."""

    def __init__(self, host, port=7000):
        super().__init__(host, port, name="Echo")
        self.pings = []
        self.pongs = []
        self.unhandled = []
        self.subscribe(Ping, self._on_ping)
        self.subscribe(Pong, self._on_pong)

    def _on_ping(self, packet: Packet) -> None:
        self.pings.append(packet)
        self.send(packet.source, Pong(payload=packet.message.payload))

    def _on_pong(self, packet: Packet) -> None:
        self.pongs.append(packet)

    def on_unhandled(self, packet: Packet) -> None:
        self.unhandled.append(packet)


class TestComponentDispatch:
    def test_ping_pong_between_public_hosts(self, sim, hosts):
        a = EchoComponent(hosts.public_host())
        b = EchoComponent(hosts.public_host())
        a.start()
        b.start()
        a.send(b.self_endpoint, Ping(payload=7))
        sim.run()
        assert len(b.pings) == 1
        assert b.pings[0].message.payload == 7
        assert len(a.pongs) == 1

    def test_duplicate_handler_rejected(self, hosts):
        component = EchoComponent(hosts.public_host())
        with pytest.raises(ProtocolError):
            component.subscribe(Ping, lambda packet: None)

    def test_unstarted_component_ignores_packets(self, sim, hosts):
        a = EchoComponent(hosts.public_host())
        b = EchoComponent(hosts.public_host())
        a.start()  # b is NOT started
        a.send(b.self_endpoint, Ping())
        sim.run()
        assert b.pings == []

    def test_unhandled_message_hook(self, sim, hosts):
        @dataclass
        class Mystery(Message):
            pass

        a = EchoComponent(hosts.public_host())
        b = EchoComponent(hosts.public_host())
        a.start()
        b.start()
        a.send(b.self_endpoint, Mystery())
        sim.run()
        assert len(b.unhandled) == 1

    def test_requires_host_instance(self, sim):
        with pytest.raises(ProtocolError):
            EchoComponent("not-a-host")


class TestTimers:
    def test_periodic_timer_fires_repeatedly(self, sim, hosts):
        component = EchoComponent(hosts.public_host())
        component.start()
        fired = []
        component.schedule_periodic(100.0, lambda: fired.append(sim.now))
        sim.run(until=1000)
        assert len(fired) == 10

    def test_periodic_timer_stops_with_component(self, sim, hosts):
        component = EchoComponent(hosts.public_host())
        component.start()
        fired = []
        component.schedule_periodic(100.0, lambda: fired.append(sim.now))
        sim.run(until=350)
        component.stop()
        sim.run(until=2000)
        assert len(fired) == 3

    def test_one_shot_schedule_guarded_by_stop(self, sim, hosts):
        component = EchoComponent(hosts.public_host())
        component.start()
        fired = []
        component.schedule(100.0, lambda: fired.append(1))
        component.stop()
        sim.run()
        assert fired == []

    def test_invalid_period_rejected(self, sim, hosts):
        component = EchoComponent(hosts.public_host())
        component.start()
        with pytest.raises(ProtocolError):
            component.schedule_periodic(0.0, lambda: None)

    def test_start_idempotent(self, sim, hosts):
        component = EchoComponent(hosts.public_host())
        component.start()
        component.start()
        assert component.started


class TestHost:
    def test_bind_conflict_rejected(self, sim, hosts):
        host = hosts.public_host()
        EchoComponent(host, port=7000)
        with pytest.raises(NetworkError):
            EchoComponent(host, port=7000)

    def test_two_components_on_different_ports(self, sim, hosts):
        host_a = hosts.public_host()
        host_b = hosts.public_host()
        echo_a1 = EchoComponent(host_a, port=7000)
        echo_a2 = EchoComponent(host_a, port=8000)
        echo_b = EchoComponent(host_b, port=7000)
        for component in (echo_a1, echo_a2, echo_b):
            component.start()
        echo_b.send(Endpoint(host_a.address.endpoint.ip, 8000), Ping(payload=1))
        sim.run()
        assert len(echo_a2.pings) == 1
        assert echo_a1.pings == []

    def test_packet_to_unbound_port_is_dropped(self, sim, hosts, monitor):
        a = EchoComponent(hosts.public_host())
        b_host = hosts.public_host()
        a.start()
        a.send(Endpoint(b_host.address.endpoint.ip, 9999), Ping())
        sim.run()
        assert monitor.drop_count("unbound_port") == 1

    def test_kill_stops_components_and_drops_traffic(self, sim, hosts, monitor):
        a = EchoComponent(hosts.public_host())
        b = EchoComponent(hosts.public_host())
        a.start()
        b.start()
        b.host.kill()
        assert not b.started
        a.send(b.self_endpoint, Ping())
        sim.run()
        assert b.pings == []
        assert not b.host.alive
        # the packet never reached a live host
        assert monitor.drop_count() >= 1

    def test_kill_is_idempotent(self, sim, hosts):
        host = hosts.public_host()
        EchoComponent(host).start()
        host.kill()
        host.kill()
        assert not host.alive

    def test_private_host_requires_natbox(self, sim, network):
        from repro.net.address import NatType, NodeAddress

        address = NodeAddress(
            node_id=999,
            endpoint=Endpoint("2.0.0.99", 7000),
            nat_type=NatType.PRIVATE,
            private_endpoint=Endpoint("10.0.0.99", 7000),
        )
        with pytest.raises(NetworkError):
            from repro.simulator.host import Host

            Host(sim, network, address, natbox=None)

    def test_local_endpoint_public_vs_private(self, hosts):
        public = hosts.public_host()
        private = hosts.private_host()
        assert public.local_endpoint == public.address.endpoint
        assert private.local_endpoint == private.address.private_endpoint
